//! Crash flight recorder: a bounded ring buffer of recent engine events
//! that dumps a post-mortem document on failure.
//!
//! A long supervised run that trips its watchdog or rolls back under
//! `sim::recovery` leaves no trace of *what it was doing* at the moment of
//! failure — the full event log is a test-only instrument that grows
//! without bound, and the aggregate instruments fold time away. The
//! [`FlightRecorder`] keeps only the last [`capacity`](FlightRecorder::capacity)
//! delivered events (constant memory, aircraft-FDR style) plus the id of
//! the last checkpoint, and renders a
//! [`orthotrees-flight/v1`](SCHEMA) post-mortem on demand: the tail
//! events, their calendar-depth envelope, the engine's fault counters and
//! the failure reason.
//!
//! The engine dumps automatically on every `SimError` it returns, and the
//! recovery supervisor dumps on every rollback — each document is kept in
//! [`post_mortems`](FlightRecorder::post_mortems) for the caller to
//! export. Attachment follows the Option-gated zero-overhead pattern: no
//! recorder installed ⇒ the hot loop touches no flight code; installed ⇒
//! bits, clocks and outputs unchanged (proptest-pinned).
//!
//! The `TEL-002` verify rule holds every dump to its defining invariant:
//! the tail is a *contiguous suffix* of the run's event log — same events,
//! same order, no holes.

use crate::json::Json;
use orthotrees_vlsi::BitTime;
use std::collections::VecDeque;

/// The JSON schema identifier emitted by [`FlightRecorder::dump`].
pub const SCHEMA: &str = "orthotrees-flight/v1";

/// Default ring capacity: enough tail to see the failing phase, small
/// enough to stay resident.
pub const DEFAULT_CAPACITY: usize = 64;

/// One recorded delivery: what the engine knew when the bit landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Delivery ordinal over the engine's lifetime (1-based; the
    /// engine's delivered-event counter at this delivery).
    pub seq: u64,
    /// Simulated delivery time.
    pub at: BitTime,
    /// Receiving node id.
    pub node: usize,
    /// Receiving port id.
    pub port: usize,
    /// The delivered bit's value.
    pub value: bool,
    /// The delivered bit's index within its word.
    pub index: u32,
    /// Calendar depth at the delivery (the popped event included).
    pub depth: u64,
}

/// The bounded flight recorder. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    capacity: usize,
    tail: VecDeque<FlightEvent>,
    recorded: u64,
    last_checkpoint: Option<u64>,
    post_mortems: Vec<Json>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// An empty recorder keeping the last `capacity` events (clamped ≥ 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            tail: VecDeque::new(),
            recorded: 0,
            last_checkpoint: None,
            post_mortems: Vec::new(),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events recorded over the recorder's lifetime (≥ the tail length;
    /// the difference is what the ring evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The retained tail, oldest first.
    pub fn tail(&self) -> impl Iterator<Item = &FlightEvent> {
        self.tail.iter()
    }

    /// Records one delivery, evicting the oldest retained event when the
    /// ring is full.
    pub fn record(&mut self, ev: FlightEvent) {
        if self.tail.len() == self.capacity {
            self.tail.pop_front();
        }
        self.tail.push_back(ev);
        self.recorded += 1;
    }

    /// Notes that a checkpoint was taken at delivered-event count `id`
    /// (the snapshot's identity — the recovery supervisor calls this at
    /// every snapshot it keeps).
    pub fn note_checkpoint(&mut self, id: u64) {
        self.last_checkpoint = Some(id);
    }

    /// The last noted checkpoint id, if any checkpoint was ever taken.
    pub fn last_checkpoint(&self) -> Option<u64> {
        self.last_checkpoint
    }

    /// Renders a post-mortem document and retains a copy in
    /// [`post_mortems`](FlightRecorder::post_mortems). `reason` names the
    /// failure (`"budget-exhausted"`, `"rollback"`, …), `at` is the
    /// simulated time of the failure, and `fault` carries the engine's
    /// fault counters as `(name, value)` pairs.
    ///
    /// Document shape (`orthotrees-flight/v1`): `schema`, `reason`, `at`,
    /// `recorded_events` (lifetime count), `dropped_events` (evicted by
    /// the ring), `last_checkpoint` (id or `null`), a `calendar`
    /// min/max/last envelope over the tail, a `fault` counter object, and
    /// the `tail` array itself (oldest first, contiguous `seq`s — the
    /// TEL-002 invariant).
    pub fn dump(&mut self, reason: &str, at: BitTime, fault: &[(&str, u64)]) -> Json {
        let depths = || self.tail.iter().map(|e| e.depth);
        let calendar = Json::obj([
            ("min", Json::u64(depths().min().unwrap_or(0))),
            ("max", Json::u64(depths().max().unwrap_or(0))),
            ("last", Json::u64(self.tail.back().map_or(0, |e| e.depth))),
        ]);
        let tail = Json::arr(self.tail.iter().map(|e| {
            Json::obj([
                ("seq", Json::u64(e.seq)),
                ("at", Json::u64(e.at.get())),
                ("node", Json::u64(e.node as u64)),
                ("port", Json::u64(e.port as u64)),
                ("value", Json::bool(e.value)),
                ("index", Json::u64(u64::from(e.index))),
                ("depth", Json::u64(e.depth)),
            ])
        }));
        let doc = Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("reason", Json::str(reason)),
            ("at", Json::u64(at.get())),
            ("recorded_events", Json::u64(self.recorded)),
            ("dropped_events", Json::u64(self.recorded - self.tail.len() as u64)),
            ("last_checkpoint", self.last_checkpoint.map_or(Json::Null, Json::u64)),
            ("calendar", calendar),
            ("fault", Json::obj(fault.iter().map(|&(k, v)| (k, Json::u64(v))))),
            ("tail", tail),
        ]);
        self.post_mortems.push(doc.clone());
        doc
    }

    /// Every post-mortem dumped so far, in dump order.
    pub fn post_mortems(&self) -> &[Json] {
        &self.post_mortems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> FlightEvent {
        FlightEvent {
            seq,
            at: BitTime::new(seq * 3),
            node: (seq % 5) as usize,
            port: (seq % 2) as usize,
            value: seq.is_multiple_of(2),
            index: (seq % 8) as u32,
            depth: 1 + seq % 4,
        }
    }

    #[test]
    fn ring_keeps_only_the_newest_events() {
        let mut f = FlightRecorder::new(4);
        for s in 1..=10 {
            f.record(ev(s));
        }
        assert_eq!(f.recorded(), 10);
        let seqs: Vec<u64> = f.tail().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10], "oldest evicted, order preserved");
        assert_eq!(f.capacity(), 4);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let mut f = FlightRecorder::new(0);
        f.record(ev(1));
        f.record(ev(2));
        assert_eq!(f.tail().count(), 1);
        assert_eq!(f.tail().next().unwrap().seq, 2);
    }

    #[test]
    fn dump_document_has_the_schema_and_the_tail() {
        let mut f = FlightRecorder::new(3);
        for s in 1..=5 {
            f.record(ev(s));
        }
        f.note_checkpoint(4);
        let doc = f.dump("budget-exhausted", BitTime::new(99), &[("injected", 2)]);
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("reason").and_then(Json::as_str), Some("budget-exhausted"));
        assert_eq!(doc.get("at").and_then(Json::as_u64), Some(99));
        assert_eq!(doc.get("recorded_events").and_then(Json::as_u64), Some(5));
        assert_eq!(doc.get("dropped_events").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("last_checkpoint").and_then(Json::as_u64), Some(4));
        assert_eq!(
            doc.get("fault").and_then(|f| f.get("injected")).and_then(Json::as_u64),
            Some(2)
        );
        let tail = doc.get("tail").and_then(Json::as_arr).unwrap();
        assert_eq!(tail.len(), 3);
        let seqs: Vec<u64> =
            tail.iter().map(|e| e.get("seq").and_then(Json::as_u64).unwrap()).collect();
        assert_eq!(seqs, vec![3, 4, 5], "contiguous suffix");
        let cal = doc.get("calendar").unwrap();
        assert_eq!(cal.get("max").and_then(Json::as_u64), Some(4));
        // The dump is retained and the rendered text parses back.
        assert_eq!(f.post_mortems().len(), 1);
        let back = Json::parse(&doc.render()).expect("post-mortem parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn empty_recorder_dumps_a_valid_document() {
        let mut f = FlightRecorder::new(8);
        let doc = f.dump("no-completion", BitTime::ZERO, &[]);
        assert_eq!(doc.get("recorded_events").and_then(Json::as_u64), Some(0));
        assert!(doc.get("tail").and_then(Json::as_arr).unwrap().is_empty());
        assert_eq!(doc.get("last_checkpoint"), Some(&Json::Null));
        assert_eq!(doc.get("calendar").and_then(|c| c.get("max")).and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn multiple_dumps_accumulate() {
        let mut f = FlightRecorder::new(2);
        f.record(ev(1));
        f.dump("rollback", BitTime::new(3), &[]);
        f.record(ev(2));
        f.dump("rollback", BitTime::new(6), &[]);
        assert_eq!(f.post_mortems().len(), 2);
        let tails: Vec<usize> = f
            .post_mortems()
            .iter()
            .map(|d| d.get("tail").and_then(Json::as_arr).unwrap().len())
            .collect();
        assert_eq!(tails, vec![1, 2]);
    }
}
