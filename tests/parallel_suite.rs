//! Parallel-execution identity: [`ParallelPolicy::Threads`] fans each
//! primitive's per-tree selector gather over scoped threads, and must be
//! **bit-identical and clock-identical** to the sequential policy —
//! every register, every root, the simulated clock, the operation
//! statistics and the fault statistics. Only the read-only gather is
//! parallelised (writes, transits and charges replay in tree order), so
//! any divergence is an executor bug, not a tolerance.

use orthotrees::otc::Otc;
use orthotrees::otn::{self, Axis, Otn, PhaseCost};
use orthotrees::{BitTime, FaultPlan, FaultStats, OpStats, ParallelPolicy, Word};
use proptest::prelude::*;

/// A moderately damaging plan: detectable and silent word faults plus
/// retries, so degraded paths (erasures, First-contention under
/// corruption, retry charges) are all exercised.
fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).with_word_fault_rate(0.3).with_max_retries(2)
}

/// Everything observable about a run.
type Snapshot =
    (Vec<Option<Word>>, Vec<Option<Word>>, Vec<Option<Word>>, BitTime, OpStats, FaultStats);

/// Runs the full OTN primitive repertoire on an `n × n` net under
/// `policy` and snapshots the final state.
fn run_otn(policy: ParallelPolicy, n: usize, fault_seed: Option<u64>) -> Snapshot {
    let mut net = Otn::for_sorting(n).unwrap();
    net.set_parallel_policy(policy);
    if let Some(seed) = fault_seed {
        net.install_fault_plan(plan(seed));
    }
    let a = net.alloc_reg("A");
    let b = net.alloc_reg("B");
    net.load_reg(a, |i, j| Some(((i * 31 + j * 7) % 97) as Word - 13));
    net.load_row_roots(&(0..n as Word).collect::<Vec<_>>());

    net.root_to_leaf(Axis::Rows, b, otn::all);
    net.leaf_to_root(Axis::Cols, a, |i, _, _| i == 1);
    net.count_to_root(Axis::Rows, a);
    net.sum_to_root(Axis::Rows, a, otn::all);
    net.min_to_root(Axis::Cols, a, otn::all);
    net.max_to_root(Axis::Rows, a, otn::all);
    net.sum_to_leaf(Axis::Rows, a, |_, j, _| j == 0, b, otn::all);
    net.bp_phase(PhaseCost::Compare, |_, _, _| {});

    let mut cells = Vec::new();
    for r in [a, b] {
        for i in 0..n {
            for j in 0..n {
                cells.push(net.peek(r, i, j));
            }
        }
    }
    (
        cells,
        net.roots(Axis::Rows).to_vec(),
        net.roots(Axis::Cols).to_vec(),
        net.clock().now(),
        *net.clock().stats(),
        net.fault_stats(),
    )
}

/// Everything observable about an OTC run (roots are per-tree buffers).
type OtcSnapshot = (
    Vec<Option<Word>>,
    Vec<Vec<Option<Word>>>,
    Vec<Vec<Option<Word>>>,
    BitTime,
    OpStats,
    FaultStats,
);

/// Runs the full OTC stream repertoire under `policy` and snapshots.
fn run_otc(policy: ParallelPolicy, n: usize, fault_seed: Option<u64>) -> OtcSnapshot {
    let mut net = Otc::for_sorting(n).unwrap();
    net.set_parallel_policy(policy);
    if let Some(seed) = fault_seed {
        net.install_fault_plan(plan(seed));
    }
    let (m, cycle) = (net.side(), net.cycle_len());
    let a = net.alloc_reg("A");
    let b = net.alloc_reg("B");
    net.load_reg(a, |i, j, q| Some(((i * 13 + j * 5 + q * 3) % 89) as Word - 7));
    net.load_row_root_buffers(
        &(0..m).map(|t| (0..cycle as Word).map(|q| q + t as Word).collect()).collect::<Vec<_>>(),
    );

    net.circulate(&[a]);
    net.root_to_cycle(Axis::Rows, b, |_, _, _| true);
    net.cycle_to_root(Axis::Rows, a, |_, j, _, _| j == 0);
    net.sum_cycle_to_root(Axis::Rows, a, |_, _, _, _| true);
    net.min_cycle_to_root(Axis::Cols, a, |_, _, _, _| true);
    net.sum_cycle_to_cycle(Axis::Rows, a, |_, _, _, _| true, b, |_, _, _| true);

    let mut cells = Vec::new();
    for r in [a, b] {
        for i in 0..m {
            for j in 0..m {
                for q in 0..cycle {
                    cells.push(net.peek(r, i, j, q));
                }
            }
        }
    }
    (
        cells,
        net.roots(Axis::Rows).to_vec(),
        net.roots(Axis::Cols).to_vec(),
        net.clock().now(),
        *net.clock().stats(),
        net.fault_stats(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Threads ≡ Sequential on the OTN for every paper primitive, over
    /// 2² to 2⁷ leaves, with and without an installed fault plan.
    #[test]
    fn otn_threads_policy_is_bit_and_clock_identical(
        k in 2u32..=7,
        seed in 0u64..1_000_000,
        faulty in any::<bool>(),
    ) {
        let n = 1usize << k;
        let fault_seed = faulty.then_some(seed);
        let seq = run_otn(ParallelPolicy::Sequential, n, fault_seed);
        let par = run_otn(ParallelPolicy::Threads, n, fault_seed);
        prop_assert_eq!(seq, par);
    }

    /// Threads ≡ Sequential on the OTC, with and without faults.
    #[test]
    fn otc_threads_policy_is_bit_and_clock_identical(
        size_idx in 0usize..3,
        seed in 0u64..1_000_000,
        faulty in any::<bool>(),
    ) {
        let n = [16usize, 64, 256][size_idx];
        let fault_seed = faulty.then_some(seed);
        let seq = run_otc(ParallelPolicy::Sequential, n, fault_seed);
        let par = run_otc(ParallelPolicy::Threads, n, fault_seed);
        prop_assert_eq!(seq, par);
    }
}

/// The policy is a per-net knob: setting it is observable and does not
/// leak across instances.
#[test]
fn policy_is_per_instance() {
    let mut a = Otn::for_sorting(4).unwrap();
    let b = Otn::for_sorting(4).unwrap();
    assert_eq!(a.parallel_policy(), ParallelPolicy::Sequential);
    a.set_parallel_policy(ParallelPolicy::Threads);
    assert_eq!(a.parallel_policy(), ParallelPolicy::Threads);
    assert_eq!(b.parallel_policy(), ParallelPolicy::Sequential);
}

/// Sorting — the deepest primitive pipeline in the repo — end to end
/// under the threaded policy: same order, same clock as sequential.
#[test]
fn threaded_sort_matches_sequential_sort() {
    let xs: Vec<Word> = (0..64).map(|v| (v * 37) % 64).collect();
    let mut seq = Otn::for_sorting(64).unwrap();
    let seq_out = otn::sort::sort(&mut seq, &xs).unwrap();
    let mut par = Otn::for_sorting(64).unwrap();
    par.set_parallel_policy(ParallelPolicy::Threads);
    let par_out = otn::sort::sort(&mut par, &xs).unwrap();
    assert_eq!(seq_out.sorted, par_out.sorted);
    assert_eq!(seq_out.time, par_out.time);
    assert_eq!(seq.clock().stats(), par.clock().stats());
}
