//! Runs the whole reproduction battery: Tables I–IV (+ MST), rankings,
//! crossovers and the observability profile. This is the report
//! EXPERIMENTS.md records. Also writes each table as CSV under
//! `target/report/`, the machine-readable benchmark summary as
//! `BENCH_2.json`, a Chrome-trace of the instrumented `SORT-OTN` run
//! as `target/report/sort_otn.trace.json` (open in Perfetto), and the
//! schema-checked telemetry exports (`telemetry.json` / `telemetry.om`).

use orthotrees::obs::chrome::chrome_trace_with_flows;
use orthotrees_analysis::{csv, obsreport, report};
use orthotrees_bench::{export, preset_from_env, summary};
use std::fs;
use std::path::Path;

fn main() {
    let preset = preset_from_env();
    let cfg = preset.config();
    print!("{}", report::full_report(&cfg));

    let dir = Path::new("target/report");
    if fs::create_dir_all(dir).is_ok() {
        let tables = [
            ("table1.csv", report::table1(&cfg)),
            ("table2.csv", report::table2(&cfg)),
            ("table3.csv", report::table3(&cfg)),
            ("table3_mst.csv", report::table3_mst(&cfg)),
            ("table4.csv", report::table4(&cfg)),
        ];
        for (name, table) in tables {
            let path = dir.join(name);
            if let Err(e) = fs::write(&path, csv::table_to_csv(&table)) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }

        // Chrome-trace of the instrumented sort (1 τ = 1 µs in the trace).
        let obs_n = cfg.sort_ns.iter().copied().filter(|&n| n <= 128).max().unwrap_or(16);
        let (_, rec) = obsreport::otn_sort_observed(obs_n, cfg.seed);
        let trace = dir.join("sort_otn.trace.json");
        if let Err(e) = fs::write(&trace, chrome_trace_with_flows(&rec).render()) {
            eprintln!("warning: could not write {}: {e}", trace.display());
        }
        // Telemetry exports of the stock pipeline-SLO batch, schema-checked
        // in-process (see the `telemetry` binary for the standalone gate).
        match export::telemetry_artifacts(64, 256, cfg.seed) {
            Ok(art) => {
                for (name, text) in
                    [("telemetry.json", &art.json), ("telemetry.om", &art.open_metrics)]
                {
                    let path = dir.join(name);
                    if let Err(e) = fs::write(&path, text) {
                        eprintln!("warning: could not write {}: {e}", path.display());
                    }
                }
            }
            Err(errs) => eprintln!("warning: telemetry export failed: {errs:?}"),
        }

        println!("\nCSV series, Perfetto trace and telemetry exports written to {}", dir.display());
    }

    let bench = summary::bench_summary(preset.name(), &cfg);
    match fs::write("BENCH_2.json", bench.render() + "\n") {
        Ok(()) => println!("Benchmark summary written to BENCH_2.json"),
        Err(e) => eprintln!("warning: could not write BENCH_2.json: {e}"),
    }
}
