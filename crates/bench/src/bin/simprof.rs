//! `simprof` — emit and diff `orthotrees-profile/v1` profile documents.
//!
//! ```text
//! simprof --emit PROF_7.json [--full]
//! simprof --baseline PROF_7.json [--current <file>] [--json <out>]
//!         [--time-threshold 0.05] [--events-threshold 0.05]
//!         [--peak-threshold 0.10] [--speedup-floor 1.2]
//! ```
//!
//! - `--emit <file>`: run the fixed workload matrix (word-level
//!   `SORT-OTN`/`SORT-OTC` clean and under the dense fault plan, the
//!   engine `ROOTTOLEAF` companions, and the outage-dense
//!   supervised-recovery row), validate the document against the schema,
//!   and write it;
//! - `--full`: the whole `n ∈ {64, 256, 512}` grid (default: the quick
//!   smoke column, `n = 64`);
//! - `--baseline <file>`: diff mode — the committed reference profile;
//! - `--current <file>`: the profile to compare. Omitted, `simprof`
//!   regenerates one in-process with the baseline's preset (the runs are
//!   deterministic, so a clean tree diffs with zero change everywhere);
//! - `--json <out>`: also write the `orthotrees-profdiff/v1` document;
//! - threshold flags override the per-metric gates (completion and total
//!   events 5%, peak calendar depth 10%; a shifted top-1 hot spot always
//!   fails);
//! - `--speedup-floor <x>`: require the event-core microbench's
//!   heap-over-ladder speedup to reach `x` (an absolute gate on the
//!   current run; default 0 = disabled, because the ns/event figures
//!   are machine-dependent and debug builds are too noisy to gate).
//!
//! Exits 0 when clean, 1 on a regression or a vanished row, 2 on bad
//! arguments, unreadable input, or a schema-invalid document.

use orthotrees::obs::json::Json;
use orthotrees_analysis::report::ReportConfig;
use orthotrees_bench::profile::{self, ProfileThresholds};
use std::fs;
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("simprof: {msg}");
    eprintln!(
        "usage: simprof --emit <file> [--full] | --baseline <file> [--current <file>] \
         [--json <out>] [--time-threshold X] [--events-threshold X] [--peak-threshold X] \
         [--speedup-floor X]"
    );
    exit(2);
}

fn read_doc(path: &str) -> Json {
    let text =
        fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc =
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e:?}")));
    validate(&doc, path);
    doc
}

fn validate(doc: &Json, what: &str) {
    let errs = profile::profile_violations(doc);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("simprof: {what}: {e}");
        }
        fail(&format!("{what} violates the {} schema", profile::SCHEMA));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut emit_path = None;
    let mut baseline_path = None;
    let mut current_path = None;
    let mut json_out = None;
    let mut full = false;
    let mut thresholds = ProfileThresholds::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        let number = |name: &str, v: String| -> f64 {
            v.parse().unwrap_or_else(|_| fail(&format!("{name} must be a number")))
        };
        match a.as_str() {
            "--emit" => emit_path = Some(value("--emit")),
            "--full" => full = true,
            "--baseline" => baseline_path = Some(value("--baseline")),
            "--current" => current_path = Some(value("--current")),
            "--json" => json_out = Some(value("--json")),
            "--time-threshold" => {
                thresholds.time_rel = number("--time-threshold", value("--time-threshold"));
            }
            "--events-threshold" => {
                thresholds.events_rel = number("--events-threshold", value("--events-threshold"));
            }
            "--peak-threshold" => {
                thresholds.peak_rel = number("--peak-threshold", value("--peak-threshold"));
            }
            "--speedup-floor" => {
                thresholds.speedup_floor = number("--speedup-floor", value("--speedup-floor"));
            }
            other => fail(&format!("unknown argument {other}")),
        }
    }

    let seed = ReportConfig::default().seed;

    if let Some(out) = &emit_path {
        let preset = if full { "full" } else { "quick" };
        eprintln!("simprof: running the {preset} profile matrix …");
        let doc = profile::profile_document(preset, seed);
        validate(&doc, "emitted document");
        if let Err(e) = fs::write(out, doc.render() + "\n") {
            fail(&format!("cannot write {out}: {e}"));
        }
        println!("profile document written to {out}");
    }

    let Some(baseline_path) = baseline_path else {
        if emit_path.is_none() {
            fail("nothing to do: pass --emit and/or --baseline");
        }
        return;
    };
    let baseline = read_doc(&baseline_path);

    let current = match &current_path {
        Some(p) => read_doc(p),
        None => {
            // Regenerate with the baseline's preset so the grids match.
            let preset = match baseline.get("preset").and_then(Json::as_str) {
                Some("full") => "full",
                _ => "quick",
            };
            let base_seed = baseline.get("seed").and_then(Json::as_u64).unwrap_or(seed);
            eprintln!("simprof: no --current given; regenerating a {preset} run in-process …");
            let doc = profile::profile_document(preset, base_seed);
            validate(&doc, "regenerated document");
            doc
        }
    };

    let report = profile::diff(&baseline, &current, &thresholds);
    print!("{}", report.render_text());
    if let Some(out) = json_out {
        if let Err(e) = fs::write(&out, report.to_json().render() + "\n") {
            fail(&format!("cannot write {out}: {e}"));
        }
        println!("diff document written to {out}");
    }
    if !report.is_clean() {
        exit(1);
    }
}
