//! The primitive-descriptor registry: one source of truth for every paper
//! primitive.
//!
//! The paper defines each network operation as an instance of a handful of
//! tree-primitive shapes (§II.B, §V.B). Before this module existed the
//! codebase re-stated each primitive's identity five times — the executor
//! bodies in [`otn`](crate::otn) / [`otc`](crate::otc), the closed forms in
//! `orthotrees_vlsi::cost`, the span names seen by the
//! [`Recorder`](orthotrees_obs::Recorder), the per-level segments in
//! `core::attribution`, and the expectation tables in `orthotrees-verify` —
//! so they could silently drift (the historical example: `Otn::leaf_to_root`
//! charged its fault-overhead base from the *broadcast* closed form).
//!
//! [`REGISTRY`] collapses those restatements into one declarative table of
//! [`PrimitiveSpec`]s. Each layer derives from it:
//!
//! * the executors look up their span name, combine [`Monoid`] and
//!   [`CostKind`] via [`spec_for`] and route through one shared
//!   gather → fault-round → transit → charge scaffold;
//! * [`CostModel::primitive_cost`](orthotrees_vlsi::CostModel::primitive_cost)
//!   maps the cost kind to its closed form, pricing both the clock charge
//!   and the fault-overhead base from the same place;
//! * attribution picks its per-level segment shape from the cost kind;
//! * `verify`'s SCHED-/CRIT-/PRIM- rules and the registry-coverage tests
//!   enumerate the table instead of hand-written lists.
//!
//! The table also makes per-tree data independence explicit, which is what
//! [`ParallelPolicy::Threads`] exploits: the read-only selector gather of a
//! primitive fans out over scoped threads, one chunk of trees per worker,
//! while every write, fault transit and clock charge stays in sequential
//! tree order — so the parallel run is bit- and clock-identical to the
//! sequential one by construction (and property tests assert it).

use crate::Word;
use orthotrees_vlsi::CostKind;

/// Which network family implements a primitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Network {
    /// Orthogonal trees network only ([`crate::otn::Otn`]).
    Otn,
    /// Orthogonal tree cycles only ([`crate::otc::Otc`]).
    Otc,
    /// Both networks (shared phases such as `BP-PHASE`, `FAULT-OVERHEAD`).
    Both,
}

impl Network {
    /// Whether the primitive exists on the OTN.
    pub fn on_otn(self) -> bool {
        matches!(self, Network::Otn | Network::Both)
    }

    /// Whether the primitive exists on the OTC.
    pub fn on_otc(self) -> bool {
        matches!(self, Network::Otc | Network::Both)
    }
}

/// What kind of operation a registry entry describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// A single tree/cycle traversal priced by one [`CostKind`] closed form.
    Communication,
    /// A two-leg composite of communication primitives (`LEAFTOLEAF`,
    /// `CYCLETOCYCLE`, …); opens an enclosing span, charges nothing itself.
    Composite,
    /// A pure local compute phase at the BPs / roots / cycle processors.
    Compute,
    /// A multi-primitive procedure span (`SORT-OTN`, `SCAN`, …) whose cost
    /// is the sum of the primitives it invokes.
    Procedure,
    /// The fault-retry overhead span charged by the resilience layer.
    Overhead,
}

/// The communication shape of a primitive (paper §II.B / §V.B vocabulary).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Root-to-leaf word movement.
    Broadcast,
    /// Leaf-to-root relay of a single selected word.
    Send,
    /// Leaf-to-root combining ascent.
    Aggregate,
    /// An OTC traversal pipelining one word per cycle position behind a
    /// single tree traversal.
    Stream,
    /// One hop of an OTC cycle rotation.
    Circulate,
}

/// The combine monoid of an upward primitive — how the per-leaf (or
/// per-position) contributions fold into the root word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Monoid {
    /// Exactly one leaf is selected and its word is relayed verbatim;
    /// selecting two is a contention violation (the executor panics unless
    /// the net is running degraded under a fault plan).
    First,
    /// Count of selected leaves (the folded words are ignored).
    Count,
    /// Sum of selected words, `NULL` counting as zero; an empty selection
    /// sums to `Some(0)`.
    Sum,
    /// Minimum over selected non-`NULL` words; `None` when none.
    Min,
    /// Maximum over selected non-`NULL` words; `None` when none.
    Max,
}

/// The result-width rule of a primitive (paper §II.B: "all numbers being
/// used are O(log N) bits long"; SUM/COUNT widen by `log C`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResultWidth {
    /// The result is a plain `w`-bit word.
    Word,
    /// The result widens to `w + log₂(leaves)` bits (SUM/COUNT). Note the
    /// cost model charges the widened tail for *every* aggregate as a safe
    /// symmetric upper bound — see
    /// [`CostModel::tree_aggregate`](orthotrees_vlsi::CostModel::tree_aggregate).
    Widened,
    /// The entry produces no word of its own (compute phases, procedures,
    /// the overhead span).
    None,
}

/// One paper primitive, declared once.
///
/// `name` doubles as the [`Recorder`](orthotrees_obs::Recorder) span name —
/// the registry-coverage test asserts the bijection between span names seen
/// during a full sweep and registry entries, so a misspelled span cannot
/// survive.
#[derive(Clone, Copy, Debug)]
pub struct PrimitiveSpec {
    /// Canonical primitive / span name (e.g. `"SUM-LEAFTOROOT"`).
    pub name: &'static str,
    /// Which network(s) implement it.
    pub network: Network,
    /// Operation class.
    pub class: Class,
    /// Communication shape, for communication-class entries.
    pub direction: Option<Direction>,
    /// Combine monoid, for upward communication primitives.
    pub combine: Option<Monoid>,
    /// Result-width rule.
    pub result_width: ResultWidth,
    /// Cost kind — the single key both the clock charge and the
    /// fault-overhead base are priced from. `None` for composites (their
    /// legs charge), compute phases (priced by a
    /// [`PhaseCost`](crate::otn::PhaseCost)), procedures, `PAIRWISE`
    /// (distance-parameterised, priced in place) and `VECTORCIRCULATE`'s
    /// enclosing procedures.
    pub cost: Option<CostKind>,
    /// For composites: the `(upward, downward)` leg names, which must
    /// themselves be registry entries.
    pub composite_of: Option<(&'static str, &'static str)>,
}

/// Shorthand constructor for the registry table below.
const fn spec(name: &'static str, network: Network, class: Class) -> PrimitiveSpec {
    PrimitiveSpec {
        name,
        network,
        class,
        direction: None,
        combine: None,
        result_width: ResultWidth::None,
        cost: None,
        composite_of: None,
    }
}

/// A communication-class entry.
const fn comm(
    name: &'static str,
    network: Network,
    direction: Direction,
    combine: Option<Monoid>,
    result_width: ResultWidth,
    cost: CostKind,
) -> PrimitiveSpec {
    PrimitiveSpec {
        name,
        network,
        class: Class::Communication,
        direction: Some(direction),
        combine,
        result_width,
        cost: Some(cost),
        composite_of: None,
    }
}

/// A composite entry: `up` then `down`, both registry names.
const fn composite(
    name: &'static str,
    network: Network,
    result_width: ResultWidth,
    up: &'static str,
    down: &'static str,
) -> PrimitiveSpec {
    PrimitiveSpec {
        name,
        network,
        class: Class::Composite,
        direction: None,
        combine: None,
        result_width,
        cost: None,
        composite_of: Some((up, down)),
    }
}

/// The registry: every primitive, phase and procedure span of the paper
/// implementation, declared exactly once. Order groups OTN tree
/// primitives, OTN composites, OTC stream primitives, OTC composites,
/// compute phases, procedures, and the overhead span.
pub const REGISTRY: &[PrimitiveSpec] = &[
    // ---- OTN tree primitives (§II.B) ------------------------------------
    comm(
        "ROOTTOLEAF",
        Network::Otn,
        Direction::Broadcast,
        None,
        ResultWidth::Word,
        CostKind::Broadcast,
    ),
    comm(
        "LEAFTOROOT",
        Network::Otn,
        Direction::Send,
        Some(Monoid::First),
        ResultWidth::Word,
        CostKind::Send,
    ),
    comm(
        "COUNT-LEAFTOROOT",
        Network::Otn,
        Direction::Aggregate,
        Some(Monoid::Count),
        ResultWidth::Widened,
        CostKind::Aggregate,
    ),
    comm(
        "SUM-LEAFTOROOT",
        Network::Otn,
        Direction::Aggregate,
        Some(Monoid::Sum),
        ResultWidth::Widened,
        CostKind::Aggregate,
    ),
    comm(
        "MIN-LEAFTOROOT",
        Network::Otn,
        Direction::Aggregate,
        Some(Monoid::Min),
        ResultWidth::Word,
        CostKind::Aggregate,
    ),
    comm(
        "MAX-LEAFTOROOT",
        Network::Otn,
        Direction::Aggregate,
        Some(Monoid::Max),
        ResultWidth::Word,
        CostKind::Aggregate,
    ),
    // ---- OTN composites (§II.B composites 1–3) ---------------------------
    composite("LEAFTOLEAF", Network::Otn, ResultWidth::Word, "LEAFTOROOT", "ROOTTOLEAF"),
    composite(
        "COUNT-LEAFTOLEAF",
        Network::Otn,
        ResultWidth::Widened,
        "COUNT-LEAFTOROOT",
        "ROOTTOLEAF",
    ),
    composite("SUM-LEAFTOLEAF", Network::Otn, ResultWidth::Widened, "SUM-LEAFTOROOT", "ROOTTOLEAF"),
    composite("MIN-LEAFTOLEAF", Network::Otn, ResultWidth::Word, "MIN-LEAFTOROOT", "ROOTTOLEAF"),
    composite("MAX-LEAFTOLEAF", Network::Otn, ResultWidth::Word, "MAX-LEAFTOROOT", "ROOTTOLEAF"),
    // PAIRWISE is communication but distance-parameterised: its cost
    // depends on the exchange distance, so it is priced in place rather
    // than by a closed-form kind.
    spec("PAIRWISE", Network::Otn, Class::Communication),
    // ---- OTC stream primitives (§V.B) ------------------------------------
    comm(
        "VECTORCIRCULATE",
        Network::Otc,
        Direction::Circulate,
        None,
        ResultWidth::Word,
        CostKind::CycleStep,
    ),
    comm(
        "ROOTTOCYCLE",
        Network::Otc,
        Direction::Stream,
        None,
        ResultWidth::Word,
        CostKind::StreamBroadcast,
    ),
    comm(
        "CYCLETOROOT",
        Network::Otc,
        Direction::Stream,
        Some(Monoid::First),
        ResultWidth::Word,
        CostKind::StreamSend,
    ),
    comm(
        "SUM-CYCLETOROOT",
        Network::Otc,
        Direction::Stream,
        Some(Monoid::Sum),
        ResultWidth::Widened,
        CostKind::StreamAggregate,
    ),
    comm(
        "MIN-CYCLETOROOT",
        Network::Otc,
        Direction::Stream,
        Some(Monoid::Min),
        ResultWidth::Word,
        CostKind::StreamAggregate,
    ),
    // ---- OTC composites ---------------------------------------------------
    composite("CYCLETOCYCLE", Network::Otc, ResultWidth::Word, "CYCLETOROOT", "ROOTTOCYCLE"),
    composite(
        "SUM-CYCLETOCYCLE",
        Network::Otc,
        ResultWidth::Widened,
        "SUM-CYCLETOROOT",
        "ROOTTOCYCLE",
    ),
    composite(
        "MIN-CYCLETOCYCLE",
        Network::Otc,
        ResultWidth::Word,
        "MIN-CYCLETOROOT",
        "ROOTTOCYCLE",
    ),
    // ---- compute phases ---------------------------------------------------
    spec("BP-PHASE", Network::Both, Class::Compute),
    spec("ROOT-PHASE", Network::Otn, Class::Compute),
    spec("CYCLE-PHASE", Network::Otc, Class::Compute),
    // ---- procedure spans --------------------------------------------------
    spec("SCAN", Network::Otn, Class::Procedure),
    spec("ROUTE", Network::Otn, Class::Procedure),
    spec("SORT-OTN", Network::Otn, Class::Procedure),
    spec("SORT-OTC", Network::Otc, Class::Procedure),
    // ---- resilience -------------------------------------------------------
    spec("FAULT-OVERHEAD", Network::Both, Class::Overhead),
];

/// Looks up a registry entry by name.
pub fn lookup(name: &str) -> Option<&'static PrimitiveSpec> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// Looks up a registry entry by name, panicking on an unknown one — the
/// executors route every span through this, so a misspelled primitive name
/// is caught at first use rather than surviving as an orphan span.
///
/// # Panics
///
/// Panics if `name` is not in [`REGISTRY`].
pub fn spec_for(name: &str) -> &'static PrimitiveSpec {
    lookup(name).unwrap_or_else(|| panic!("unknown primitive {name:?}: not in the registry"))
}

/// How a network executes the per-tree independent portions of a primitive
/// (the read-only selector gather). Writes, fault transits and clock
/// charges always run in sequential tree order, so both policies are bit-
/// and clock-identical — asserted by property tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ParallelPolicy {
    /// Gather tree by tree on the calling thread (the default).
    #[default]
    Sequential,
    /// Fan the gather out over scoped threads (`std::thread::scope`), one
    /// chunk of trees per worker, up to the machine's available
    /// parallelism. Only engages when a primitive spans at least two trees.
    Threads,
}

/// Runs `f(t)` for every tree `t in 0..trees` and collects the results in
/// tree order, fanning out over scoped threads under
/// [`ParallelPolicy::Threads`]. A panic in a worker (e.g. a contention
/// assertion) is re-raised on the caller with its original payload.
pub(crate) fn per_tree<T: Send>(
    policy: ParallelPolicy,
    trees: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let workers = match policy {
        ParallelPolicy::Sequential => 1,
        ParallelPolicy::Threads => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(trees),
    };
    if workers <= 1 {
        return (0..trees).map(f).collect();
    }
    let chunk = trees.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(trees);
                let f = &f;
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        let mut out = Vec::with_capacity(trees);
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                // Preserve the worker's panic payload (contention
                // assertions must surface with their original message).
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// The running state of one tree's (or cycle position's) combine fold —
/// the executable form of [`Monoid`], shared by the OTN and OTC upward
/// executors.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Acc {
    /// [`Monoid::First`]: the relayed word once found.
    First {
        /// Whether a leaf has been selected yet.
        found: bool,
        /// The first selected leaf's word.
        value: Option<Word>,
    },
    /// [`Monoid::Count`]: running count of selected leaves.
    Count(Word),
    /// [`Monoid::Sum`]: running sum (`NULL` counts as zero).
    Sum(Word),
    /// [`Monoid::Min`]: running minimum over non-`NULL` words.
    Min(Option<Word>),
    /// [`Monoid::Max`]: running maximum over non-`NULL` words.
    Max(Option<Word>),
}

impl Acc {
    /// The identity element of `monoid`.
    pub(crate) fn new(monoid: Monoid) -> Acc {
        match monoid {
            Monoid::First => Acc::First { found: false, value: None },
            Monoid::Count => Acc::Count(0),
            Monoid::Sum => Acc::Sum(0),
            Monoid::Min => Acc::Min(None),
            Monoid::Max => Acc::Max(None),
        }
    }

    /// Folds one selected leaf's word in. `on_contention` fires when a
    /// [`Monoid::First`] fold sees a second selected leaf (the first word
    /// is kept, matching degraded-mode semantics; in a healthy net the
    /// callback asserts).
    pub(crate) fn fold(&mut self, word: Option<Word>, on_contention: impl FnOnce()) {
        match self {
            Acc::First { found, value } => {
                if *found {
                    on_contention();
                } else {
                    *found = true;
                    *value = word;
                }
            }
            Acc::Count(c) => *c += 1,
            Acc::Sum(s) => *s += word.unwrap_or(0),
            Acc::Min(best) => {
                if let Some(w) = word {
                    *best = Some(best.map_or(w, |b| b.min(w)));
                }
            }
            Acc::Max(best) => {
                if let Some(w) = word {
                    *best = Some(best.map_or(w, |b| b.max(w)));
                }
            }
        }
    }

    /// The folded root word.
    pub(crate) fn finish(self) -> Option<Word> {
        match self {
            Acc::First { value, .. } => value,
            Acc::Count(c) => Some(c),
            Acc::Sum(s) => Some(s),
            Acc::Min(best) | Acc::Max(best) => best,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_are_unique() {
        let mut seen = HashSet::new();
        for s in REGISTRY {
            assert!(seen.insert(s.name), "duplicate registry entry {:?}", s.name);
        }
    }

    #[test]
    fn lookup_and_spec_for_agree() {
        for s in REGISTRY {
            assert_eq!(lookup(s.name).unwrap().name, s.name);
            assert_eq!(spec_for(s.name).name, s.name);
        }
        assert!(lookup("ROOTTOLEAF-TYPO").is_none());
    }

    #[test]
    #[should_panic(expected = "not in the registry")]
    fn spec_for_unknown_name_panics() {
        let _ = spec_for("NOT-A-PRIMITIVE");
    }

    #[test]
    fn communication_entries_declare_direction_and_cost() {
        for s in REGISTRY.iter().filter(|s| s.class == Class::Communication) {
            if s.name == "PAIRWISE" {
                // Distance-parameterised: priced in place.
                assert!(s.cost.is_none());
                continue;
            }
            assert!(s.direction.is_some(), "{} lacks a direction", s.name);
            assert!(s.cost.is_some(), "{} lacks a cost kind", s.name);
        }
    }

    #[test]
    fn composites_reference_registry_entries() {
        for s in REGISTRY.iter().filter(|s| s.class == Class::Composite) {
            let (up, down) = s.composite_of.expect("composite declares its legs");
            let up = spec_for(up);
            let down = spec_for(down);
            assert_eq!(up.class, Class::Communication, "{}'s upward leg", s.name);
            assert_eq!(down.class, Class::Communication, "{}'s downward leg", s.name);
            assert!(
                matches!(
                    up.direction,
                    Some(Direction::Send | Direction::Aggregate | Direction::Stream)
                ),
                "{}'s first leg must ascend",
                s.name
            );
            assert!(
                matches!(down.direction, Some(Direction::Broadcast | Direction::Stream)),
                "{}'s second leg must descend",
                s.name
            );
            assert_eq!(s.network, up.network);
            assert_eq!(s.network, down.network);
        }
    }

    #[test]
    fn every_cost_kind_is_reachable() {
        let used: HashSet<_> = REGISTRY.iter().filter_map(|s| s.cost).collect();
        for kind in orthotrees_vlsi::CostKind::ALL {
            assert!(used.contains(&kind), "no registry entry uses {kind:?}");
        }
    }

    #[test]
    fn acc_folds_match_monoid_semantics() {
        let nop = || {};
        let mut first = Acc::new(Monoid::First);
        first.fold(Some(7), nop);
        assert_eq!(first.finish(), Some(7));

        let mut count = Acc::new(Monoid::Count);
        count.fold(Some(9), nop);
        count.fold(None, nop);
        assert_eq!(count.finish(), Some(2), "count ignores the words");

        let mut sum = Acc::new(Monoid::Sum);
        sum.fold(Some(3), nop);
        sum.fold(None, nop);
        sum.fold(Some(4), nop);
        assert_eq!(sum.finish(), Some(7), "NULL sums as zero");
        assert_eq!(Acc::new(Monoid::Sum).finish(), Some(0), "empty sum is 0");

        let mut min = Acc::new(Monoid::Min);
        min.fold(None, nop);
        assert_eq!(min.finish(), None, "all-NULL min is NULL");
        let mut min = Acc::new(Monoid::Min);
        min.fold(Some(5), nop);
        min.fold(Some(2), nop);
        assert_eq!(min.finish(), Some(2));

        let mut max = Acc::new(Monoid::Max);
        max.fold(Some(5), nop);
        max.fold(Some(2), nop);
        assert_eq!(max.finish(), Some(5));
    }

    #[test]
    fn first_contention_keeps_the_first_word() {
        let mut acc = Acc::new(Monoid::First);
        let mut contended = false;
        acc.fold(Some(1), || {});
        acc.fold(Some(2), || contended = true);
        assert!(contended);
        assert_eq!(acc.finish(), Some(1));
    }

    #[test]
    fn per_tree_orders_results_under_both_policies() {
        for policy in [ParallelPolicy::Sequential, ParallelPolicy::Threads] {
            for trees in [0usize, 1, 2, 7, 64] {
                let got = per_tree(policy, trees, |t| t * t);
                let want: Vec<usize> = (0..trees).map(|t| t * t).collect();
                assert_eq!(got, want, "{policy:?} over {trees} trees");
            }
        }
    }

    #[test]
    #[should_panic(expected = "synthetic contention")]
    fn per_tree_reraises_worker_panics_verbatim() {
        let _ = per_tree(ParallelPolicy::Threads, 8, |t| {
            assert!(t != 5, "synthetic contention in tree {t}");
            t
        });
    }
}
