//! Matrix algorithms on the OTN (paper §III.A).
//!
//! * [`vector_matrix`] — `VECTORMATRIXMULT-OTN`: broadcast the vector down
//!   the row trees, multiply at the base, sum up the column trees:
//!   `Θ(log² N)`.
//! * [`matmul`] — `MATRIXMULT-OTN`: `N` vector–matrix products *pipelined*
//!   through the network, successive rows of `A` entering `Θ(log N)` apart
//!   ("pipedo"); makespan `Θ(N log N)` after a `Θ(log² N)` fill.
//! * [`matmul_wide`] / [`bool_matmul_wide`] — the wide construction behind
//!   Table II's OTN/OTC rows: an `(N² × N)` orthogonal-trees network in
//!   which row `(i·N + j)` holds the pairs `(A(i,k), B(k,j))` and one
//!   aggregation computes all `N²` inner products in `Θ(log² N)`.

use super::{all, Axis, Otn, PhaseCost};
use crate::grid::Grid;
use crate::word::Word;
use orthotrees_vlsi::{BitTime, ModelError, OpStats};

/// Result of a vector–matrix product.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VectorMatrixOutcome {
    /// `y = x·B`, read from the column roots.
    pub y: Vec<Word>,
    /// Simulated time.
    pub time: BitTime,
}

/// Result of a matrix–matrix product.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatMulOutcome {
    /// The product matrix.
    pub c: Grid<Word>,
    /// Pipelined makespan: first-pass latency plus `(N−1)` issue intervals
    /// (§III.A: "pipedo … the separation in time between successive i's in
    /// the pipeline is O(log N)").
    pub time: BitTime,
    /// The unpipelined total (every pass serialised) for comparison — the
    /// pipelining ablation of DESIGN.md §7.
    pub time_unpipelined: BitTime,
    /// Primitive-operation counts.
    pub stats: OpStats,
}

/// Computes `y = x·B` on the `(N×N)`-OTN `net`, where `b` is the register
/// plane holding `B` (load it with [`Otn::load_reg`]).
///
/// # Errors
///
/// Returns [`ModelError`] if `x.len()` differs from the network's row count.
pub fn vector_matrix(
    net: &mut Otn,
    x: &[Word],
    b: super::Reg,
) -> Result<VectorMatrixOutcome, ModelError> {
    ModelError::require_equal("vector length vs rows", net.rows(), x.len())?;
    let xa = net.alloc_reg("x");
    let p = net.alloc_reg("prod");
    net.load_row_roots(x);
    let (_, time) = net.elapsed(|net| {
        net.root_to_leaf(Axis::Rows, xa, all);
        net.bp_phase(PhaseCost::Multiply, |_, _, bp| {
            let prod = match (bp.get(xa), bp.get(b)) {
                (Some(xv), Some(bv)) => Some(xv * bv),
                _ => Some(0),
            };
            bp.set(p, prod);
        });
        net.sum_to_root(Axis::Cols, p, all);
    });
    let y = net.roots(Axis::Cols).iter().map(|v| v.expect("SUM roots are never NULL")).collect();
    Ok(VectorMatrixOutcome { y, time })
}

/// Computes `C = A·B` by pipelining the `N` rows of `A` through
/// [`vector_matrix`] (paper §III.A, `pipedo`).
///
/// # Errors
///
/// Returns [`ModelError`] if the matrices are not `N×N` for the network's
/// side `N`, or the network is not square.
pub fn matmul(net: &mut Otn, a: &Grid<Word>, b: &Grid<Word>) -> Result<MatMulOutcome, ModelError> {
    let n = net.rows();
    ModelError::require_equal("square network", net.rows(), net.cols())?;
    for (what, g) in
        [("A rows", a.rows()), ("A cols", a.cols()), ("B rows", b.rows()), ("B cols", b.cols())]
    {
        ModelError::require_equal(what, n, g)?;
    }
    let breg = net.alloc_reg("B");
    net.load_reg(breg, |i, j| Some(*b.get(i, j)));
    let stats_before = *net.clock().stats();

    let mut c = Grid::filled(n, n, 0);
    let mut first_pass = BitTime::ZERO;
    let mut total = BitTime::ZERO;
    for i in 0..n {
        let row: Vec<Word> = a.row(i).to_vec();
        let out = vector_matrix(net, &row, breg)?;
        for (j, v) in out.y.iter().enumerate() {
            c.set(i, j, *v);
        }
        if i == 0 {
            first_pass = out.time;
        }
        total += out.time;
    }
    // Pipelined makespan: the network is a three-stage pipeline (row trees,
    // base, column trees); successive vectors enter one word apart.
    let time = first_pass + net.model().pipeline_interval() * (n as u64 - 1);
    let stats = net.clock().stats().since(&stats_before);
    Ok(MatMulOutcome { c, time, time_unpipelined: total, stats })
}

/// Result of a wide (`Θ(log² N)`-time) matrix product.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WideMatMulOutcome {
    /// The product matrix (for the Boolean variant, entries are 0/1).
    pub c: Grid<Word>,
    /// Simulated time (`Θ(log² N)`).
    pub time: BitTime,
    /// Rows of the wide network used (`N²`).
    pub network_rows: usize,
    /// Columns of the wide network used (`N`).
    pub network_cols: usize,
}

fn wide_product(
    a: &Grid<Word>,
    b: &Grid<Word>,
    boolean: bool,
) -> Result<WideMatMulOutcome, ModelError> {
    let n = a.rows();
    for (what, g) in [("A cols", a.cols()), ("B rows", b.rows()), ("B cols", b.cols())] {
        ModelError::require_equal(what, n, g)?;
    }
    ModelError::require_power_of_two("matrix side", n)?;
    let mut net = Otn::wide(n * n, n)?;
    let pa = net.alloc_reg("A-elem");
    let pb = net.alloc_reg("B-elem");
    let prod = net.alloc_reg("prod");
    // Row r = i·N + j of the wide network holds, at leaf k, the operand pair
    // (A(i,k), B(k,j)) — the paper's §III placement with the row index
    // linearised over (i, j).
    net.load_reg(pa, |r, k| Some(*a.get(r / n, k)));
    net.load_reg(pb, |r, k| Some(*b.get(k, r % n)));
    let (_, time) = net.elapsed(|net| {
        if boolean {
            net.bp_phase(PhaseCost::Bit, |_, _, bp| {
                let v = match (bp.get(pa), bp.get(pb)) {
                    (Some(x), Some(y)) => Word::from(x != 0 && y != 0),
                    _ => 0,
                };
                bp.set(prod, Some(v));
            });
        } else {
            net.bp_phase(PhaseCost::Multiply, |_, _, bp| {
                let v = match (bp.get(pa), bp.get(pb)) {
                    (Some(x), Some(y)) => x * y,
                    _ => 0,
                };
                bp.set(prod, Some(v));
            });
        }
        net.sum_to_root(Axis::Rows, prod, all);
    });
    let roots = net.roots(Axis::Rows);
    let c = Grid::from_fn(n, n, |i, j| {
        let s = roots[i * n + j].expect("SUM roots are never NULL");
        if boolean {
            Word::from(s != 0)
        } else {
            s
        }
    });
    Ok(WideMatMulOutcome { c, time, network_rows: n * n, network_cols: n })
}

/// Integer `C = A·B` in `Θ(log² N)` on an `(N²×N)` orthogonal-trees network
/// (builds the network internally; its area is what Table II charges).
///
/// # Errors
///
/// Returns [`ModelError`] unless both matrices are square `N×N` with `N` a
/// power of two.
pub fn matmul_wide(a: &Grid<Word>, b: &Grid<Word>) -> Result<WideMatMulOutcome, ModelError> {
    wide_product(a, b, false)
}

/// Boolean `C = A·B` (entries 0/1, AND/OR semiring) in `Θ(log² N)` — the
/// Table II experiment.
///
/// # Errors
///
/// Returns [`ModelError`] unless both matrices are square `N×N` with `N` a
/// power of two.
pub fn bool_matmul_wide(a: &Grid<Word>, b: &Grid<Word>) -> Result<WideMatMulOutcome, ModelError> {
    wide_product(a, b, true)
}

/// Sequential reference product (for verification).
pub fn reference_matmul(a: &Grid<Word>, b: &Grid<Word>) -> Grid<Word> {
    let n = a.rows();
    Grid::from_fn(n, n, |i, j| (0..n).map(|k| a.get(i, k) * b.get(k, j)).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(vals: &[&[Word]]) -> Grid<Word> {
        Grid::from_fn(vals.len(), vals[0].len(), |i, j| vals[i][j])
    }

    #[test]
    fn vector_matrix_small_example() {
        let mut net = Otn::for_sorting(2).unwrap();
        let b = net.alloc_reg("B");
        let bm = grid(&[&[1, 2], &[3, 4]]);
        net.load_reg(b, |i, j| Some(*bm.get(i, j)));
        let out = vector_matrix(&mut net, &[5, 6], b).unwrap();
        assert_eq!(out.y, vec![5 + 6 * 3, 5 * 2 + 6 * 4]);
    }

    #[test]
    fn vector_matrix_time_is_theta_log_squared() {
        let mut ratios = Vec::new();
        for k in [3u32, 5, 7] {
            let n = 1usize << k;
            let mut net = Otn::for_sorting(n).unwrap();
            let b = net.alloc_reg("B");
            net.load_reg(b, |i, j| Some(((i + j) % 5) as Word));
            let x: Vec<Word> = (0..n as Word).collect();
            let out = vector_matrix(&mut net, &x, b).unwrap();
            ratios.push(out.time.as_f64() / (k as f64 * k as f64));
        }
        let lo = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ratios.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi / lo < 3.0, "{ratios:?}");
    }

    #[test]
    fn matmul_matches_reference() {
        let a = grid(&[&[1, 2, 0, 1], &[0, 1, 1, 0], &[3, 0, 0, 2], &[1, 1, 1, 1]]);
        let b = grid(&[&[2, 0, 1, 0], &[1, 1, 0, 0], &[0, 3, 0, 1], &[1, 0, 0, 2]]);
        let mut net = Otn::for_sorting(4).unwrap();
        let out = matmul(&mut net, &a, &b).unwrap();
        assert_eq!(out.c, reference_matmul(&a, &b));
    }

    #[test]
    fn pipelining_beats_serialisation() {
        let n = 16;
        let a = Grid::from_fn(n, n, |i, j| ((i * 3 + j) % 7) as Word);
        let b = Grid::from_fn(n, n, |i, j| ((i + 2 * j) % 5) as Word);
        let mut net = Otn::for_sorting(n).unwrap();
        let out = matmul(&mut net, &a, &b).unwrap();
        assert!(
            out.time < out.time_unpipelined,
            "pipelined {} vs serial {}",
            out.time,
            out.time_unpipelined
        );
        // Makespan = fill + N·interval: Θ(N log N), i.e. well below N·log².
        assert!(out.time.as_f64() < out.time_unpipelined.as_f64() / 2.0);
    }

    #[test]
    fn wide_matmul_matches_reference() {
        let a = grid(&[&[1, 2], &[3, 4]]);
        let b = grid(&[&[5, 6], &[7, 8]]);
        let out = matmul_wide(&a, &b).unwrap();
        assert_eq!(out.c, reference_matmul(&a, &b));
        assert_eq!(out.network_rows, 4);
        assert_eq!(out.network_cols, 2);
    }

    #[test]
    fn bool_matmul_is_boolean() {
        let a = grid(&[&[1, 0, 0, 1], &[0, 1, 0, 0], &[0, 0, 0, 0], &[1, 1, 0, 0]]);
        let b = grid(&[&[0, 1, 0, 0], &[0, 0, 1, 0], &[0, 0, 0, 1], &[1, 0, 0, 0]]);
        let out = bool_matmul_wide(&a, &b).unwrap();
        let reference = reference_matmul(&a, &b);
        for (i, j, v) in out.c.iter() {
            assert_eq!(*v, Word::from(*reference.get(i, j) != 0), "({i},{j})");
            assert!(*v == 0 || *v == 1);
        }
    }

    #[test]
    fn wide_time_is_theta_log_squared_of_n() {
        // The wide network's dominant cost is one aggregation over N² rows'
        // trees of N leaves: Θ(log² N) in the matrix side N.
        let mut times = Vec::new();
        for n in [2usize, 4, 8] {
            let a = Grid::from_fn(n, n, |i, j| Word::from(i == j));
            let out = matmul_wide(&a, &a).unwrap();
            times.push(out.time.as_f64());
        }
        // Doubling N should grow time by far less than 4× (it is polylog).
        assert!(times[2] / times[0] < 4.0, "{times:?}");
    }

    #[test]
    fn identity_is_neutral() {
        let n = 4;
        let a = Grid::from_fn(n, n, |i, j| ((i * j + 1) % 6) as Word);
        let id = Grid::from_fn(n, n, |i, j| Word::from(i == j));
        let out = matmul_wide(&a, &id).unwrap();
        assert_eq!(out.c, a);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let a = grid(&[&[1, 2], &[3, 4]]);
        let b3 = Grid::filled(3, 3, 1);
        assert!(matmul_wide(&a, &b3).is_err());
        let b_crooked = Grid::filled(3, 3, 1);
        assert!(bool_matmul_wide(&b_crooked, &b_crooked).is_err(), "3 is not a power of two");
    }
}
