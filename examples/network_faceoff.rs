//! The Table I face-off, live: sort the same inputs on all five networks
//! under the same cost model and watch area, time and AT² diverge exactly
//! the way the paper's asymptotics say they should.
//!
//! Run with: `cargo run -p orthotrees-bench --example network_faceoff`

use orthotrees_analysis::sweep;
use orthotrees_analysis::tables::{paper, ReproTable};

fn main() {
    let ns = [16usize, 64, 256];
    let seed = 2026;

    println!("sorting the same {} workloads on every network…\n", ns.len());
    let sweeps = vec![
        sweep::sort_mesh(&ns, seed, false),
        sweep::sort_psn(&ns, seed, false),
        sweep::sort_ccc(&ns, seed, false),
        sweep::sort_otn(&ns, seed, false),
        sweep::sort_otc(&ns, seed),
    ];
    let table = ReproTable::build("Table I", "sorting (logarithmic-delay model)", paper::table1(), sweeps);
    print!("{}", table.render());

    println!("\npaper's asymptotic AT² ranking: {:?}", table.paper_ranking());
    println!("measured AT² ranking at N = {}:", ns.last().unwrap());
    for (rank, (name, at2)) in table.measured_ranking().into_iter().enumerate() {
        println!("  {}. {name:<5} {at2:.3e}", rank + 1);
    }
    println!(
        "\nreading: the mesh wins sorting outright (its optimal N² log² N is the paper's \
         point of reference); among the fast networks the OTC matches the PSN/CCC's \
         N² log⁴ N while the plain OTN pays N² log⁶ N for its simplicity."
    );
}
