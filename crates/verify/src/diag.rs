//! Structured diagnostics: the rule catalogue, findings and reports.
//!
//! Every check in this crate reports through the same vocabulary: a
//! [`Finding`] names the violated rule (stable id), the network and the
//! node/link it anchors to, what is wrong, and how to fix it. A [`Report`]
//! collects findings across passes and renders them as text or as an
//! [`obs::json`](orthotrees_obs::json) document for machine consumption.
//!
//! Rule ids are **stable**: tests (the mutation matrix) and downstream
//! tooling key off them, so an id is never renumbered or reused.

use orthotrees_obs::json::Json;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not provably wrong (e.g. budget heuristics).
    Warning,
    /// The network violates a structural or scheduling invariant.
    Error,
}

impl Severity {
    /// Lower-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One rule of the catalogue.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// Stable identifier (`NET-001`, `TREE-003`, ...).
    pub id: &'static str,
    /// One-line summary of what the rule checks.
    pub summary: &'static str,
    /// Severity of a violation.
    pub severity: Severity,
    /// The kind of element a finding anchors to (`RULES.md` column).
    pub subject: &'static str,
    /// Catalogue-level fix hint (individual findings carry a sharper,
    /// instance-specific hint).
    pub hint: &'static str,
}

/// The full rule catalogue, in id order (mirrored in DESIGN.md §10 and
/// the generated `RULES.md`).
pub const RULES: &[Rule] = &[
    Rule {
        id: "NET-001",
        summary: "input port driven by more than one link (write-write wiring conflict)",
        severity: Severity::Error,
        subject: "input port",
        hint: "rewire so every input port has exactly one driving link",
    },
    Rule {
        id: "NET-002",
        summary: "link endpoint references a node that does not exist (dangling wire)",
        severity: Severity::Error,
        subject: "link endpoint",
        hint: "point both link endpoints at nodes inside the netlist",
    },
    Rule {
        id: "NET-003",
        summary: "node degree or port fan-out exceeds the paper's constant bound",
        severity: Severity::Error,
        subject: "node",
        hint: "split the node or reroute links until the degree bound holds",
    },
    Rule {
        id: "NET-004",
        summary: "link connects a node to itself",
        severity: Severity::Error,
        subject: "link",
        hint: "remove the self-loop or retarget one endpoint",
    },
    Rule {
        id: "NET-005",
        summary: "two identical parallel links between the same port pair",
        severity: Severity::Error,
        subject: "link pair",
        hint: "drop the duplicate link",
    },
    Rule {
        id: "TREE-001",
        summary: "not a complete binary tree with the expected leaf count",
        severity: Severity::Error,
        subject: "tree",
        hint: "rebuild the tree with 2·leaves − 1 nodes and leaves-first ids",
    },
    Rule {
        id: "TREE-002",
        summary: "node unreachable from the tree root (disconnected subtree)",
        severity: Severity::Error,
        subject: "tree node",
        hint: "restore the missing internal links so the root reaches every node",
    },
    Rule {
        id: "TREE-003",
        summary: "wire length violates the strip embedding's level rule (pitch·2^(h−1))",
        severity: Severity::Error,
        subject: "tree wire",
        hint: "use the strip embedding's level length pitch·2^(h−1)",
    },
    Rule {
        id: "OTN-001",
        summary: "OTN dimensions are not powers of two",
        severity: Severity::Error,
        subject: "network shape",
        hint: "round the matrix dimensions to powers of two",
    },
    Rule {
        id: "OTN-002",
        summary: "OTN leaf pitch disagrees with the layout convention (w + depth + 1)",
        severity: Severity::Error,
        subject: "leaf pitch",
        hint: "set pitch to word bits + tree depth + 1",
    },
    Rule {
        id: "OTC-001",
        summary: "OTC cycle length is not the Θ(log N) decomposition of dims_for",
        severity: Severity::Error,
        subject: "cycle length",
        hint: "use the dims_for(n) decomposition for the cycle length",
    },
    Rule {
        id: "OTC-002",
        summary: "OTC pitch disagrees with the cycle-block convention",
        severity: Severity::Error,
        subject: "leaf pitch",
        hint: "set pitch to the cycle block max(2L−1, w+1) + depth + 1",
    },
    Rule {
        id: "AREA-001",
        summary: "constructed layout area disagrees with the closed-form prediction",
        severity: Severity::Error,
        subject: "layout",
        hint: "reconcile the constructed layout with the closed-form area",
    },
    Rule {
        id: "GEO-001",
        summary: "layout components overlap on the chip",
        severity: Severity::Error,
        subject: "chip component",
        hint: "move the overlapping component to a free strip",
    },
    Rule {
        id: "SCHED-001",
        summary: "two words occupy the same link entrance slot (write-write drive conflict)",
        severity: Severity::Error,
        subject: "link slot",
        hint: "re-stagger the schedule so each slot carries one word",
    },
    Rule {
        id: "SCHED-002",
        summary: "primitive's static step count exceeds its O(log² N) budget",
        severity: Severity::Warning,
        subject: "schedule",
        hint: "shorten the schedule or justify the budget excess",
    },
    Rule {
        id: "SCHED-003",
        summary: "derived static schedule disagrees with the charged closed-form cost",
        severity: Severity::Error,
        subject: "schedule",
        hint: "derive the schedule and the charged cost from one closed form",
    },
    Rule {
        id: "CKPT-001",
        summary: "checkpoint/restore round trip diverges from the uninterrupted run",
        severity: Severity::Error,
        subject: "engine snapshot",
        hint: "capture the forgotten engine state in the snapshot",
    },
    Rule {
        id: "CKPT-002",
        summary: "snapshot on-disk format broken (not a render/parse fixed point, tampering \
                  accepted, or shape mismatch not rejected)",
        severity: Severity::Error,
        subject: "snapshot file",
        hint: "make render/parse a fixed point and reject tampered documents",
    },
    Rule {
        id: "DET-001",
        summary: "same-timestamp events do not commute (tie-break order changes results)",
        severity: Severity::Error,
        subject: "event pair",
        hint: "make same-timestamp event handlers commutative",
    },
    Rule {
        id: "ENG-001",
        summary: "heap and ladder calendars deliver different event sequences for the same network",
        severity: Severity::Error,
        subject: "calendar pair",
        hint: "the ladder must honour the unique (at, seq) ordering key exactly",
    },
    Rule {
        id: "CRIT-001",
        summary: "clean ROOTTOLEAF critical path disagrees with the per-level closed-form delays",
        severity: Severity::Error,
        subject: "critical path",
        hint: "align per-level wire delays with the closed form",
    },
    Rule {
        id: "CRIT-002",
        summary: "critical path does not tile [0, completion] (gap, overlap or wrong endpoints)",
        severity: Severity::Error,
        subject: "critical path",
        hint: "close the gap/overlap so segments tile [0, completion]",
    },
    Rule {
        id: "CRIT-003",
        summary: "link slack accounting broken (no zero-slack completion link)",
        severity: Severity::Error,
        subject: "link slack",
        hint: "recompute slacks so the completion link has zero slack",
    },
    Rule {
        id: "PRIM-001",
        summary: "primitive registry disagrees with the CostModel (unpriced entry, \
                  drifted closed form, or unreachable cost kind)",
        severity: Severity::Error,
        subject: "registry entry",
        hint: "price the entry through CostModel::primitive_cost",
    },
    Rule {
        id: "PROF-001",
        summary: "profiler window sums do not tile the recorder's aggregate totals",
        severity: Severity::Error,
        subject: "profile window",
        hint: "make the window sums tile the recorder totals exactly",
    },
    Rule {
        id: "PROF-002",
        summary: "profiler window sequence has a gap or is not monotone from index 0",
        severity: Severity::Error,
        subject: "window sequence",
        hint: "emit windows contiguously from index 0",
    },
    Rule {
        id: "DFLOW-001",
        summary: "primitive reads a register cell no leg has written (uninitialized read)",
        severity: Severity::Error,
        subject: "register cell",
        hint: "declare the cell as a primitive input or write it in an earlier leg",
    },
    Rule {
        id: "DFLOW-002",
        summary: "dead register write (overwritten or never consumed before primitive end)",
        severity: Severity::Error,
        subject: "register write",
        hint: "drop the write or route its value to an output / later leg",
    },
    Rule {
        id: "DFLOW-003",
        summary: "write-write clobber of one register cell inside a single leg",
        severity: Severity::Error,
        subject: "register cell",
        hint: "split the writes across legs or give each its own cell",
    },
    Rule {
        id: "DFLOW-004",
        summary: "static result width disagrees with the registry's ResultWidth rule",
        severity: Severity::Error,
        subject: "result width",
        hint: "fix the combine monoid or the registry's declared width",
    },
    Rule {
        id: "DFLOW-005",
        summary: "static provenance set disagrees with the dynamic reach observed in traces",
        severity: Severity::Error,
        subject: "provenance set",
        hint: "make the executor move exactly the words the symbolic program declares",
    },
    Rule {
        id: "TEL-001",
        summary: "sketch-reported quantile falls outside the ε rank band of the exact quantiles",
        severity: Severity::Error,
        subject: "quantile sketch",
        hint: "feed the sketch every recorded sample and keep ε consistent between write and read",
    },
    Rule {
        id: "TEL-002",
        summary: "flight-recorder dump is not a contiguous suffix of the run's event log",
        severity: Severity::Error,
        subject: "flight dump",
        hint: "record every delivered event in order and never mutate the retained tail",
    },
];

/// Renders the catalogue as the markdown document committed as
/// `RULES.md` (regenerated by the `rulegen` binary; ci.sh diffs the two).
pub fn rules_markdown() -> String {
    let mut out = String::from(
        "# Rule catalogue\n\n\
         Generated from `orthotrees-verify`'s `diag::RULES` by the `rulegen`\n\
         binary — do not edit by hand; run\n\
         `cargo run -p orthotrees-verify --bin rulegen > RULES.md` instead.\n\
         ci.sh regenerates this file and fails on drift.\n\n\
         | id | severity | subject | summary | fix hint |\n\
         |----|----------|---------|---------|----------|\n",
    );
    for r in RULES {
        // Collapse the source's folded string literals to single spaces.
        let summary = r.summary.split_whitespace().collect::<Vec<_>>().join(" ");
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            r.id,
            r.severity.name(),
            r.subject,
            summary,
            r.hint
        ));
    }
    out
}

/// Looks a rule up by id.
///
/// # Panics
///
/// Panics if `id` is not in the catalogue — rule ids are compile-time
/// constants, so an unknown id is a bug in this crate.
pub fn rule(id: &str) -> &'static Rule {
    RULES.iter().find(|r| r.id == id).unwrap_or_else(|| panic!("unknown rule id {id}"))
}

/// Looks a rule up by id without panicking — for data that crossed a
/// serialization boundary (e.g. [`Report::from_json`]), where an unknown
/// id is malformed input rather than a bug in this crate.
pub fn find_rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One diagnostic: a rule violation anchored to a network element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule's stable id.
    pub rule: &'static str,
    /// Severity (copied from the catalogue at construction).
    pub severity: Severity,
    /// Which network/configuration was being checked.
    pub network: String,
    /// The node/link/level the finding anchors to.
    pub subject: String,
    /// What is wrong, with the observed and expected values.
    pub detail: String,
    /// How to fix it.
    pub hint: String,
}

impl Finding {
    /// Creates a finding for catalogue rule `id`.
    pub fn new(
        id: &'static str,
        network: impl Into<String>,
        subject: impl Into<String>,
        detail: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Finding {
            rule: id,
            severity: rule(id).severity,
            network: network.into(),
            subject: subject.into(),
            detail: detail.into(),
            hint: hint.into(),
        }
    }

    /// Renders one line of text: `RULE severity network subject: detail`.
    pub fn render(&self) -> String {
        format!(
            "{} [{}] {} · {}: {} (fix: {})",
            self.rule,
            self.severity.name(),
            self.network,
            self.subject,
            self.detail,
            self.hint
        )
    }

    /// The finding as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rule", Json::str(self.rule)),
            ("severity", Json::str(self.severity.name())),
            ("network", Json::str(self.network.clone())),
            ("subject", Json::str(self.subject.clone())),
            ("detail", Json::str(self.detail.clone())),
            ("hint", Json::str(self.hint.clone())),
        ])
    }
}

/// A collection of findings across verification passes.
#[derive(Clone, Debug, Default)]
pub struct Report {
    findings: Vec<Finding>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Adds one finding.
    pub fn push(&mut self, f: Finding) {
        self.findings.push(f);
    }

    /// Adds a batch of findings.
    pub fn extend(&mut self, fs: impl IntoIterator<Item = Finding>) {
        self.findings.extend(fs);
    }

    /// All findings, in insertion order.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// True when no findings were collected.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings for one rule id.
    pub fn count(&self, rule: &str) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// True if at least one finding matches `rule`.
    pub fn has(&self, rule: &str) -> bool {
        self.count(rule) > 0
    }

    /// Renders the report as human-readable text (one line per finding,
    /// plus a summary line).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        let errors = self.findings.iter().filter(|f| f.severity == Severity::Error).count();
        let warnings = self.findings.len() - errors;
        out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
        out
    }

    /// The report as a JSON document (schema `orthotrees-verify/v1`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str("orthotrees-verify/v1")),
            ("findings", Json::arr(self.findings.iter().map(Finding::to_json))),
            (
                "errors",
                Json::u64(
                    self.findings.iter().filter(|f| f.severity == Severity::Error).count() as u64
                ),
            ),
            (
                "warnings",
                Json::u64(
                    self.findings.iter().filter(|f| f.severity == Severity::Warning).count() as u64
                ),
            ),
        ])
    }

    /// Parses a report back from its [`to_json`](Report::to_json)
    /// rendering, validating the `orthotrees-verify/v1` schema id, every
    /// rule id against the catalogue, each finding's severity against the
    /// catalogue severity, and the error/warning tallies against the
    /// parsed findings. `parse → from_json → to_json` is the identity on
    /// documents this crate emitted.
    pub fn from_json(doc: &Json) -> Result<Report, String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing schema id".to_string())?;
        if schema != "orthotrees-verify/v1" {
            return Err(format!("unsupported schema {schema:?} (want orthotrees-verify/v1)"));
        }
        let items = doc.get("findings").and_then(Json::as_arr).ok_or("missing findings array")?;
        let mut report = Report::new();
        for (i, item) in items.iter().enumerate() {
            let field = |key: &str| {
                item.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("finding {i}: missing field {key}"))
            };
            let id = field("rule")?;
            let rule =
                find_rule(&id).ok_or_else(|| format!("finding {i}: unknown rule id {id}"))?;
            let severity = field("severity")?;
            if severity != rule.severity.name() {
                return Err(format!(
                    "finding {i}: severity {severity:?} contradicts the catalogue's {:?} for {}",
                    rule.severity.name(),
                    rule.id
                ));
            }
            report.push(Finding::new(
                rule.id,
                field("network")?,
                field("subject")?,
                field("detail")?,
                field("hint")?,
            ));
        }
        for (key, want) in [
            ("errors", report.findings.iter().filter(|f| f.severity == Severity::Error).count()),
            (
                "warnings",
                report.findings.iter().filter(|f| f.severity == Severity::Warning).count(),
            ),
        ] {
            let got = doc.get(key).and_then(Json::as_u64);
            if got != Some(want as u64) {
                return Err(format!("{key} tally {got:?} disagrees with {want} parsed findings"));
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_ordered() {
        let mut seen = std::collections::HashSet::new();
        for r in RULES {
            assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
        }
    }

    #[test]
    fn findings_inherit_catalogue_severity() {
        let f = Finding::new("SCHED-002", "net", "subj", "detail", "hint");
        assert_eq!(f.severity, Severity::Warning);
        let f = Finding::new("NET-001", "net", "subj", "detail", "hint");
        assert_eq!(f.severity, Severity::Error);
    }

    #[test]
    fn report_round_trips_to_json() {
        let mut r = Report::new();
        r.push(Finding::new("NET-004", "t", "link 0", "self-loop", "remove it"));
        let doc = r.to_json().render();
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("errors").and_then(Json::as_u64), Some(1));
        let arr = parsed.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].get("rule").and_then(Json::as_str), Some("NET-004"));
    }

    #[test]
    #[should_panic(expected = "unknown rule id")]
    fn unknown_rule_id_is_a_bug() {
        let _ = rule("NOPE-999");
    }

    #[test]
    fn report_parses_back_from_its_own_json() {
        let mut r = Report::new();
        r.push(Finding::new("NET-004", "t", "link 0", "self-loop", "remove it"));
        r.push(Finding::new("SCHED-002", "t", "sched", "over budget", "shorten"));
        let doc = Json::parse(&r.to_json().render()).unwrap();
        let back = Report::from_json(&doc).unwrap();
        assert_eq!(back.findings(), r.findings());
        assert_eq!(back.to_json(), r.to_json(), "round trip is the identity");
    }

    #[test]
    fn from_json_rejects_foreign_documents() {
        let bad_schema = Json::parse(r#"{"schema": "other/v9", "findings": []}"#).unwrap();
        assert!(Report::from_json(&bad_schema).unwrap_err().contains("unsupported schema"));
        let bad_rule = Json::parse(
            r#"{"schema": "orthotrees-verify/v1", "findings": [{"rule": "NOPE-1",
                "severity": "error", "network": "n", "subject": "s", "detail": "d",
                "hint": "h"}], "errors": 1, "warnings": 0}"#,
        )
        .unwrap();
        assert!(Report::from_json(&bad_rule).unwrap_err().contains("unknown rule id"));
        let tampered = Json::obj([
            ("schema", Json::str("orthotrees-verify/v1")),
            ("findings", Json::arr([Finding::new("NET-001", "t", "s", "d", "h").to_json()])),
            ("errors", Json::u64(2)),
            ("warnings", Json::u64(0)),
        ]);
        assert!(Report::from_json(&tampered).unwrap_err().contains("tally"));
    }

    #[test]
    fn markdown_catalogue_lists_every_rule_once() {
        let md = rules_markdown();
        for r in RULES {
            assert_eq!(
                md.matches(&format!("| {} |", r.id)).count(),
                1,
                "{} appears exactly once",
                r.id
            );
        }
        assert!(md.contains("| DFLOW-005 | error | provenance set |"));
    }
}
