//! Draw the chips: the paper's Fig. 1 (OTN), Fig. 2 (one OTC cycle) and
//! Fig. 3 (OTC) as ASCII art, and inspect the measured layout metrics the
//! area columns of the tables are built from.
//!
//! Run with: `cargo run -p orthotrees-bench --example chip_layout`

use orthotrees_layout::mesh::MeshLayout;
use orthotrees_layout::otc::{CycleLayout, OtcLayout};
use orthotrees_layout::otn::OtnLayout;
use orthotrees_layout::render;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 1 — the (4×4)-OTN: white circles (o) are base processors, black
    // dots (*) the tree processors; row trees live in the horizontal
    // strips, column trees in the vertical channels.
    let otn = OtnLayout::build(4, 2)?;
    println!("{}", render::ascii(otn.chip(), 200));

    // Fig. 2 — one OTC cycle: log N slivers of O(log N)×O(1) with the ring
    // wiring above.
    let cycle = CycleLayout::build(4, 4)?;
    println!("{}", render::ascii(cycle.chip(), 100));

    // Fig. 3 — the (4×4)-OTC (N = 16).
    let otc = OtcLayout::build(4, 4, 4)?;
    println!("{}", render::ascii(otc.chip(), 250));

    // Measured metrics, side by side.
    println!("layout summaries:");
    for summary in [
        otn.chip().summary(),
        cycle.chip().summary(),
        otc.chip().summary(),
        MeshLayout::build(4, 4, 2)?.chip().summary(),
    ] {
        println!("  {summary}");
    }

    // And the punchline of §V: at equal problem size the OTC chip is
    // asymptotically smaller than the OTN chip.
    println!("\nsame-problem-size areas:");
    println!("{:>8} | {:>14} | {:>14} | {:>7}", "N", "OTN [λ²]", "OTC [λ²]", "ratio");
    for k in [4u32, 6, 8, 10] {
        let n = 1usize << k;
        let a_otn = OtnLayout::predicted_area_default(n);
        let (m, l) = orthotrees_layout::otc::otc_dims(n)?;
        let a_otc = OtcLayout::predicted_area(m, l, k.max(1));
        println!(
            "{:>8} | {:>14} | {:>14} | {:>7.2}",
            n,
            a_otn.get(),
            a_otc.get(),
            a_otn.as_f64() / a_otc.as_f64()
        );
    }
    Ok(())
}
