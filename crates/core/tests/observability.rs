//! Observability contract tests for the instrumented networks.
//!
//! Two invariants:
//!
//! 1. **Bit identity** — installing a [`Recorder`] changes *nothing* about
//!    a run: outputs, simulated times and operation counts are identical
//!    with and without one (the zero-overhead-when-absent contract, and
//!    its dual: recording is purely passive).
//! 2. **Complete attribution** — every clock advance inside a procedure
//!    happens inside some phase span, so per-phase self times sum exactly
//!    to the run's completion time. The time-attribution table has no
//!    "unaccounted" row.
//! 3. **Complete causal decomposition** — every clock advance is further
//!    split into wire-delay / queue-wait / node-compute segments, so
//!    Σ segment durations equals the completion time exactly, phase by
//!    phase (the single word-serial clock makes every segment critical).

use orthotrees::obs::causal::SegmentKind;
use orthotrees::obs::Recorder;
use orthotrees::otc::{self, Otc};
use orthotrees::otn::{sort, Otn};
use orthotrees::{FaultPlan, Word};

fn otn_sort_input(n: usize) -> Vec<Word> {
    (0..n as Word).map(|v| (v * 37 + 11) % n as Word).collect()
}

#[test]
fn otn_sort_is_bit_identical_with_recorder_installed() {
    let xs = otn_sort_input(16);
    let mut plain = Otn::for_sorting(16).unwrap();
    let baseline = sort::sort(&mut plain, &xs).unwrap();

    let mut recorded = Otn::for_sorting(16).unwrap();
    recorded.install_recorder(Recorder::new());
    let observed = sort::sort(&mut recorded, &xs).unwrap();

    assert_eq!(observed, baseline, "a recorder must not perturb the run");
    let rec = recorded.take_recorder().unwrap();
    assert!(!rec.spans().is_empty(), "the run must have been recorded");
}

#[test]
fn otn_phase_self_times_sum_to_completion_time() {
    let xs = otn_sort_input(16);
    let mut net = Otn::for_sorting(16).unwrap();
    net.install_recorder(Recorder::new());
    let out = sort::sort(&mut net, &xs).unwrap();
    let rec = net.take_recorder().unwrap();

    assert_eq!(rec.total_recorded(), out.time, "root spans must cover the whole run");
    let attributed: u64 = rec.phase_totals().iter().map(|p| p.self_time.get()).sum();
    assert_eq!(attributed, out.time.get(), "self times must sum to completion time");

    // The five SORT-OTN steps appear under their paper names, inside the
    // procedure-level span.
    let top = rec.phase_totals();
    let names: Vec<&str> = top.iter().map(|p| p.name.as_str()).collect();
    for expect in
        ["SORT-OTN", "ROOTTOLEAF", "LEAFTOLEAF", "BP-PHASE", "COUNT-LEAFTOLEAF", "LEAFTOROOT"]
    {
        assert!(names.contains(&expect), "missing phase {expect}: {names:?}");
    }
    let sort_span = top.iter().find(|p| p.name == "SORT-OTN").unwrap();
    assert_eq!(sort_span.count, 1);
    assert_eq!(sort_span.total, out.time, "the procedure span covers the whole sort");
}

#[test]
fn otc_sort_is_bit_identical_with_recorder_installed() {
    let xs = otn_sort_input(16);
    let mut plain = Otc::for_sorting(16).unwrap();
    let baseline = otc::sort::sort(&mut plain, &xs).unwrap();

    let mut recorded = Otc::for_sorting(16).unwrap();
    recorded.install_recorder(Recorder::new());
    let observed = otc::sort::sort(&mut recorded, &xs).unwrap();

    assert_eq!(observed, baseline, "a recorder must not perturb the run");
    let rec = recorded.take_recorder().unwrap();
    assert!(!rec.spans().is_empty(), "the run must have been recorded");
}

#[test]
fn otc_phase_self_times_sum_to_completion_time() {
    let xs = otn_sort_input(16);
    let mut net = Otc::for_sorting(16).unwrap();
    net.install_recorder(Recorder::new());
    let out = otc::sort::sort(&mut net, &xs).unwrap();
    let rec = net.take_recorder().unwrap();

    assert_eq!(rec.total_recorded(), out.time, "root spans must cover the whole run");
    let attributed: u64 = rec.phase_totals().iter().map(|p| p.self_time.get()).sum();
    assert_eq!(attributed, out.time.get(), "self times must sum to completion time");

    let names: Vec<String> = rec.phase_totals().iter().map(|p| p.name.clone()).collect();
    for expect in
        ["SORT-OTC", "ROOTTOCYCLE", "CYCLETOCYCLE", "VECTORCIRCULATE", "BP-PHASE", "CYCLE-PHASE"]
    {
        assert!(names.iter().any(|n| n == expect), "missing phase {expect}: {names:?}");
    }
}

#[test]
fn otn_segments_tile_the_completion_time() {
    let xs = otn_sort_input(16);
    let mut net = Otn::for_sorting(16).unwrap();
    net.install_recorder(Recorder::new());
    let out = sort::sort(&mut net, &xs).unwrap();
    let rec = net.take_recorder().unwrap();

    assert_eq!(rec.segments_total(), out.time, "Σ segments == completion, exactly");
    assert!(
        rec.segments().windows(2).all(|w| w[0].end == w[1].start),
        "segments tile the clock with no gaps or overlaps"
    );
    // Every segment lands inside a named phase, and all three causal
    // categories occur in a sort (wires, word tails, BP compute).
    assert!(rec.segments().iter().all(|s| s.span.is_some()), "no unattributed segment");
    let attr = rec.segment_attribution();
    for kind in [SegmentKind::WireDelay, SegmentKind::QueueWait, SegmentKind::NodeCompute] {
        assert!(attr.iter().any(|t| t.kind == kind && t.total.get() > 0), "missing {kind:?}");
    }
    let total: u64 = attr.iter().map(|t| t.total.get()).sum();
    assert_eq!(total, out.time.get());
    // Wire segments carry tree levels; a 16×16 OTN's trees have 4 levels.
    let levels: std::collections::BTreeSet<u32> =
        rec.segments().iter().filter_map(|s| s.level).collect();
    assert_eq!(levels.into_iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
}

#[test]
fn otc_segments_tile_the_completion_time() {
    let xs = otn_sort_input(16);
    let mut net = Otc::for_sorting(16).unwrap();
    net.install_recorder(Recorder::new());
    let out = otc::sort::sort(&mut net, &xs).unwrap();
    let rec = net.take_recorder().unwrap();

    assert_eq!(rec.segments_total(), out.time, "Σ segments == completion, exactly");
    assert!(rec.segments().windows(2).all(|w| w[0].end == w[1].start));
    assert!(rec.segments().iter().all(|s| s.span.is_some()));
    let total: u64 = rec.segment_attribution().iter().map(|t| t.total.get()).sum();
    assert_eq!(total, out.time.get());
}

#[test]
fn fault_overhead_appears_as_queue_wait_segments() {
    let xs = otn_sort_input(16);
    let plan = FaultPlan::new(42)
        .with_word_fault_rate(0.3)
        .with_drop_fraction(0.0)
        .with_undetectable_fraction(0.0)
        .with_max_retries(8);
    let mut net = Otn::for_sorting(16).unwrap();
    net.install_recorder(Recorder::new());
    net.install_fault_plan(plan);
    let out = sort::sort(&mut net, &xs).unwrap();
    let rec = net.take_recorder().unwrap();

    // Retried rounds never vanish from the causal view: they tile the
    // clock like everything else, as queue-wait inside FAULT-OVERHEAD.
    assert_eq!(rec.segments_total(), out.time, "faulty runs still tile exactly");
    let overhead: Vec<_> =
        rec.segments().iter().filter(|s| rec.segment_phase(s) == "FAULT-OVERHEAD").collect();
    assert!(!overhead.is_empty(), "retry rounds must surface as segments");
    assert!(overhead.iter().all(|s| s.kind == SegmentKind::QueueWait));
    let overhead_total: u64 = overhead.iter().map(|s| s.duration().get()).sum();
    let phase = rec.phase_totals().into_iter().find(|p| p.name == "FAULT-OVERHEAD").unwrap();
    assert_eq!(overhead_total, phase.self_time.get(), "segments cover the whole overhead phase");
}

#[test]
fn fault_overhead_is_attributed_and_counted() {
    let xs = otn_sort_input(16);
    // Every faulted word is detectable (no drops, no parity evasion), so
    // faults surface purely as counted retry rounds.
    let plan = FaultPlan::new(42)
        .with_word_fault_rate(0.3)
        .with_drop_fraction(0.0)
        .with_undetectable_fraction(0.0)
        .with_max_retries(8);

    let mut net = Otn::for_sorting(16).unwrap();
    net.install_recorder(Recorder::new());
    net.install_fault_plan(plan.clone());
    let out = sort::sort(&mut net, &xs).unwrap();
    let rec = net.take_recorder().unwrap();

    // Retries both show up as a counter and as their own phase, and the
    // attribution invariant still holds under faults.
    assert!(rec.counter("fault.retry_rounds") > 0, "retries must be counted");
    let totals = rec.phase_totals();
    let overhead = totals.iter().find(|p| p.name == "FAULT-OVERHEAD");
    assert!(overhead.is_some_and(|p| p.self_time.get() > 0), "overhead must be attributed");
    let attributed: u64 = totals.iter().map(|p| p.self_time.get()).sum();
    assert_eq!(attributed, out.time.get());

    // And the recorder still does not perturb the degraded run.
    let mut plain = Otn::for_sorting(16).unwrap();
    plain.install_fault_plan(plan);
    let baseline = sort::sort(&mut plain, &xs).unwrap();
    assert_eq!(out, baseline);
}
