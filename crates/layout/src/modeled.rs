//! *Modeled* layout metrics for the perfect shuffle network (PSN) and the
//! cube-connected cycles (CCC).
//!
//! Unlike the OTN/OTC/mesh, whose layouts this crate constructs wire by
//! wire, the asymptotically optimal layouts of the shuffle-exchange graph
//! (Kleitman, Leighton, Lepley, Miller — paper ref \[14\]) and of the CCC
//! (Preparata–Vuillemin — ref \[23\]) are intricate published constructions
//! that the paper itself only cites. We therefore model their metrics as
//! closed forms with explicit constants:
//!
//! * area `A(N) = c_A · N²/log₂² N` — the optimal bound both papers achieve;
//! * longest wire `ℓ(N) = c_W · N/log₂ N` — the paper's own premise for
//!   re-timing CCC algorithms under Thompson's model ("the longest wires in
//!   the VLSI layout of the CCC are O(N/log N) units long and hence have an
//!   O(log N) delay associated with them", §I.A).
//!
//! The substitution is recorded in DESIGN.md; every use in the analysis
//! crate labels these values "modeled" as opposed to "measured".

use orthotrees_vlsi::{log2_ceil, Area, ModelError};

/// Which baseline network the metrics describe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModeledNetwork {
    /// The perfect shuffle (shuffle-exchange) network, refs \[25\], \[14\], \[30\].
    PerfectShuffle,
    /// The cube-connected cycles, ref \[23\].
    CubeConnectedCycles,
}

impl ModeledNetwork {
    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            ModeledNetwork::PerfectShuffle => "PSN",
            ModeledNetwork::CubeConnectedCycles => "CCC",
        }
    }
}

/// Modeled layout metrics for `N`-processor instances of the PSN or CCC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModeledLayout {
    /// Which network.
    pub network: ModeledNetwork,
    /// Number of processing elements.
    pub n: usize,
    /// Word width in bits.
    pub word_bits: u32,
}

impl ModeledLayout {
    /// Metrics for an `n`-processor instance with `⌈log₂ n⌉`-bit words.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if `n` is not a power of two or `n < 4`.
    pub fn new(network: ModeledNetwork, n: usize) -> Result<Self, ModelError> {
        ModelError::require_power_of_two("network size", n)?;
        ModelError::require_at_least("network size", n, 4)?;
        Ok(ModeledLayout { network, n, word_bits: log2_ceil(n as u64).max(1) })
    }

    /// Modeled chip area `c_A · N² / log₂² N`.
    ///
    /// The constant `c_A` absorbs each node's `Θ(log N)`-bit state the same
    /// way the OTN layout's BP blocks do; we use `c_A = word_bits²` per
    /// *node pair*, i.e. `A = (N·w/log N)² = N² · (w/log N)²` — with
    /// `w = ⌈log₂ N⌉` this is exactly `N²`, matching the optimal bound's
    /// shape with the node state folded in (the `1/log² N` of the bound and
    /// the `log² N` of the state cancel; the *shape in N* is what the tables
    /// compare).
    pub fn area(&self) -> Area {
        let logn = u64::from(log2_ceil(self.n as u64).max(1));
        let w = u64::from(self.word_bits);
        let side = (self.n as u64) * w / logn;
        Area::of_rect(side, side)
    }

    /// Modeled longest wire `N / log₂ N` λ — the quantity whose `O(log N)`
    /// per-bit delay costs the PSN/CCC the extra log factor under
    /// Thompson's model.
    pub fn longest_wire(&self) -> u64 {
        let logn = u64::from(log2_ceil(self.n as u64).max(1));
        ((self.n as u64) / logn).max(1)
    }

    /// Wire length for a shuffle/cube hop across `span` positions: the
    /// modeled layout places logically distant nodes up to
    /// [`Self::longest_wire`] apart; a hop across `span` of `n` positions is
    /// proportionally shorter (never below 1λ).
    pub fn hop_length(&self, span: usize) -> u64 {
        let frac = (span.max(1) as u64).min(self.n as u64);
        (self.longest_wire().saturating_mul(frac) / self.n as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_shape_is_n_squared_over_log_squared_times_state() {
        // With w = log N the modeled area is N² exactly; check the shape by
        // sweeping and normalising by N².
        let mut ratios = Vec::new();
        for k in [4u32, 8, 12, 16] {
            let n = 1usize << k;
            let m = ModeledLayout::new(ModeledNetwork::PerfectShuffle, n).unwrap();
            ratios.push(m.area().as_f64() / (n as f64 * n as f64));
        }
        let lo = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ratios.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi / lo < 1.5, "{ratios:?}");
    }

    #[test]
    fn longest_wire_is_n_over_log_n() {
        let m = ModeledLayout::new(ModeledNetwork::CubeConnectedCycles, 1 << 10).unwrap();
        assert_eq!(m.longest_wire(), 1024 / 10);
    }

    #[test]
    fn hop_length_scales_with_span_and_never_vanishes() {
        let m = ModeledLayout::new(ModeledNetwork::PerfectShuffle, 1 << 10).unwrap();
        assert_eq!(m.hop_length(1 << 10), m.longest_wire());
        assert!(m.hop_length(1) >= 1);
        assert!(m.hop_length(512) <= m.hop_length(1024));
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(ModeledLayout::new(ModeledNetwork::PerfectShuffle, 3).is_err());
        assert!(ModeledLayout::new(ModeledNetwork::PerfectShuffle, 2).is_err());
        assert!(ModeledLayout::new(ModeledNetwork::CubeConnectedCycles, 4).is_ok());
    }

    #[test]
    fn names_for_tables() {
        assert_eq!(ModeledNetwork::PerfectShuffle.name(), "PSN");
        assert_eq!(ModeledNetwork::CubeConnectedCycles.name(), "CCC");
    }
}
