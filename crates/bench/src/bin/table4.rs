//! Regenerates Table IV — sorting under the constant-delay (unit-cost)
//! model of §VII.D.

use orthotrees_analysis::report;
use orthotrees_bench::preset_from_env;

fn main() {
    let cfg = preset_from_env().config();
    let table = report::table4(&cfg);
    print!("{}", table.render());
    print!("{}", report::ranking_check(&table));
}
