//! Telemetry section of the full report: pipeline-SLO tables built from
//! [`crate::experiments::pipeline_telemetry`] runs.
//!
//! One row per `(n, problems)` point: sustained throughput in
//! problems/Mτ next to the sketch-reported p50/p90/p99 of per-problem
//! completion time. The quantiles come from the streaming
//! [`QuantileSketch`](orthotrees::obs::telemetry::QuantileSketch) — the
//! same figures the OpenMetrics export publishes — so the table doubles
//! as a human-readable view of the `orthotrees-telemetry/v1` document.

use crate::experiments::{pipeline_telemetry, PipelineSlo};
use std::fmt::Write as _;

/// Renders the pipeline-SLO table: one row per batch.
pub fn telemetry_table(rows: &[PipelineSlo]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:>9} {:>13} {:>14} {:>10} {:>10} {:>10}",
        "n", "problems", "makespan_bits", "problems/Mtau", "p50_bits", "p90_bits", "p99_bits"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>13} {:>14.1} {:>10} {:>10} {:>10}",
            r.n,
            r.problems,
            r.makespan.get(),
            r.problems_per_mtau(),
            r.quantiles[0],
            r.quantiles[1],
            r.quantiles[2],
        );
    }
    out
}

/// The telemetry section of the full report: moderate-size pipeline-SLO
/// batches (failures render as a message instead of aborting the report).
pub fn telemetry_report_section(seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Streaming telemetry — pipelined sorting SLOs (quantiles from the ε-rank sketch):"
    );
    let mut rows = Vec::new();
    for (n, problems) in [(16, 64), (64, 64)] {
        match pipeline_telemetry(n, problems, seed) {
            Ok(slo) => rows.push(slo),
            Err(e) => {
                let _ = writeln!(out, "pipeline n={n} failed: {e}");
            }
        }
    }
    out.push_str(&telemetry_table(&rows));
    out.push_str(
        "p50 tracks the single-problem latency; deep batches push p99 toward the makespan\n\
         while throughput approaches one problem per issue interval (3 word-slices).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_section_renders_every_row() {
        let text = telemetry_report_section(42);
        assert!(text.contains("problems/Mtau"), "{text}");
        assert!(!text.contains("failed:"), "{text}");
        // Both sizes made it into the table.
        assert!(text.lines().any(|l| l.trim_start().starts_with("16")), "{text}");
        assert!(text.lines().any(|l| l.trim_start().starts_with("64")), "{text}");
    }

    #[test]
    fn table_is_empty_only_of_rows_without_input() {
        assert_eq!(telemetry_table(&[]).lines().count(), 1, "header only");
    }
}
