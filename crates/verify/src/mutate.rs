//! Mutation harness: corrupt a known-good netlist, assert the linter sees.
//!
//! A linter that never fires is indistinguishable from one that is wired
//! to nothing. This module applies each class of netlist corruption to a
//! clean tree netlist and reports what the structural and tree lints find;
//! the test suite asserts every class is caught *by its expected rule id*
//! (the ids are stable, see [`crate::diag`]).

use crate::diag::Report;
use crate::net::{lint_structure, lint_tree, tree_netlist, DegreeBounds, Netlist, TreeShape};

/// One class of netlist corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Remove a wire: its subtree comes loose.
    DropLink,
    /// Rewire a sibling onto its twin's input port: two drivers, one port.
    SwapPorts,
    /// Detach an internal node's children: the subtree below it dies.
    KillSubtree,
    /// Triple one wire's length: the strip embedding's level rule breaks.
    StretchWire,
    /// Add an identical parallel wire.
    DuplicateLink,
    /// Point a wire at a node that does not exist.
    DangleLink,
    /// Wire a node's output back into its own input.
    SelfLoop,
    /// Route two wires out of one output port: the constant-degree bound
    /// breaks.
    FanoutOverload,
}

impl Mutation {
    /// Every mutation class, in declaration order.
    pub const ALL: [Mutation; 8] = [
        Mutation::DropLink,
        Mutation::SwapPorts,
        Mutation::KillSubtree,
        Mutation::StretchWire,
        Mutation::DuplicateLink,
        Mutation::DangleLink,
        Mutation::SelfLoop,
        Mutation::FanoutOverload,
    ];

    /// The rule id that must fire when this corruption is linted.
    pub fn expected_rule(self) -> &'static str {
        match self {
            Mutation::DropLink => "TREE-002",
            Mutation::SwapPorts => "NET-001",
            Mutation::KillSubtree => "TREE-001",
            Mutation::StretchWire => "TREE-003",
            Mutation::DuplicateLink => "NET-005",
            Mutation::DangleLink => "NET-002",
            Mutation::SelfLoop => "NET-004",
            Mutation::FanoutOverload => "NET-003",
        }
    }

    /// Applies the corruption to `net` (deterministically — the harness
    /// must be reproducible, so targets are chosen by index, not at
    /// random).
    ///
    /// Expects a tree netlist with at least four leaves, wired
    /// children→parent as [`tree_netlist`] builds it: links 0 and 1 are a
    /// sibling pair into the same parent.
    pub fn apply(self, net: &mut Netlist) {
        assert!(net.links.len() >= 4, "mutation targets need a tree with >= 4 leaves");
        match self {
            Mutation::DropLink => {
                let mid = net.links.len() / 2;
                net.links.remove(mid);
            }
            Mutation::SwapPorts => {
                // Siblings 0 and 1 share `to`; collide their input ports.
                net.links[1].to_port = net.links[0].to_port;
            }
            Mutation::KillSubtree => {
                let parent = net.links[0].to;
                net.links.retain(|l| l.to != parent);
            }
            Mutation::StretchWire => {
                net.links[0].length *= 3;
            }
            Mutation::DuplicateLink => {
                let dup = net.links[0];
                net.links.push(dup);
            }
            Mutation::DangleLink => {
                net.links[0].to = net.nodes + 7;
            }
            Mutation::SelfLoop => {
                net.links[0].to = net.links[0].from;
            }
            Mutation::FanoutOverload => {
                // Route link 1 out of link 0's output port too.
                net.links[1].from = net.links[0].from;
                net.links[1].from_port = net.links[0].from_port;
            }
        }
    }
}

/// Builds a clean upward tree netlist, applies `mutation`, and lints it.
pub fn lint_mutated(mutation: Mutation, leaves: usize, pitch: u64) -> Report {
    let mut net = tree_netlist(format!("mutated[{mutation:?}]"), leaves, pitch, false);
    mutation.apply(&mut net);
    let mut report = Report::new();
    report.extend(lint_structure(&net, DegreeBounds::default()));
    report.extend(lint_tree(&net, TreeShape { leaves, pitch, downward: false }));
    report
}

/// Runs the whole matrix: every mutation class against a fresh netlist.
pub fn matrix(leaves: usize, pitch: u64) -> Vec<(Mutation, Report)> {
    Mutation::ALL.iter().map(|&m| (m, lint_mutated(m, leaves, pitch))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_is_caught_by_its_rule() {
        for (m, report) in matrix(16, 5) {
            assert!(
                report.has(m.expected_rule()),
                "{m:?} not caught by {}: {}",
                m.expected_rule(),
                report.render_text()
            );
        }
    }

    #[test]
    fn expected_rules_are_distinct_per_class() {
        let ids: std::collections::HashSet<_> =
            Mutation::ALL.iter().map(|m| m.expected_rule()).collect();
        assert_eq!(ids.len(), Mutation::ALL.len());
    }

    #[test]
    fn unmutated_baseline_is_clean() {
        let net = tree_netlist("baseline", 16, 5, false);
        let mut report = Report::new();
        report.extend(lint_structure(&net, DegreeBounds::default()));
        report.extend(lint_tree(&net, TreeShape { leaves: 16, pitch: 5, downward: false }));
        assert!(report.is_clean(), "{}", report.render_text());
    }
}
