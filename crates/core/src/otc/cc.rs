//! Connected components *directly* on the OTC (paper §VI.B: "In the same
//! manner as procedure SORT-OTN was converted to SORT-OTC, we can convert
//! the matrix and graph algorithms of Section III to run on the OTC").
//!
//! This is the §V simulation carried out operation by operation rather
//! than priced from op counts: the `n×n` OTN base is tiled into `L×L`
//! squares, one per cycle of the `(n/L × n/L)`-OTC ("each cycle must store
//! a log N × log N submatrix of the adjacency matrix"), so every OTN
//! register becomes `L` register *planes* here, every OTN tree operation
//! becomes one streamed cycle operation, and every OTN base phase becomes
//! `L` cycle-local rounds.
//!
//! Data layout (vertex `v = I·L + r`, `L` = cycle length):
//!
//! * adjacency plane `r`: `aplanes[r](I, J, q) = A(I·L+r, J·L+q)`;
//! * labels: `d(I, I, q) = D(I·L+q)` at the diagonal cycles;
//! * row streams: `drow(I, J, q) = D(I·L+q)` (labels of the cycle's row
//!   group), column streams: `dcol(I, J, q) = D(J·L+q)` — note columns map
//!   to stream positions directly, which is what makes the per-position
//!   `CYCLETOROOT` selectors line up.
//!
//! The hook-and-shortcut structure is identical to
//! [`crate::otn::graph::cc`]; the tests check the measured time lands
//! within a small constant of the OTN's — the paper's "same time, less
//! area" — and the result against union–find.

use super::{Axis, Otc, PhaseCost, Reg};
use crate::grid::Grid;
use crate::otn::graph::cc::{reference_components, CcOutcome};
use crate::word::Word;
use orthotrees_vlsi::{log2_ceil, CostModel, ModelError};

struct CcRegs {
    aplanes: Vec<Reg>,
    d: Reg,
    prev: Reg,
    drow: Reg,
    dcol: Reg,
    candplanes: Vec<Reg>,
    pmin: Reg,
    minn: Reg,
    creg: Reg,
    crow: Reg,
    lcand: Reg,
    ldist: Reg,
    fetch: Reg,
    newd: Reg,
    chflag: Reg,
}

/// Computes connected components of the undirected graph with adjacency
/// matrix `adj` on a fresh `(n/L × n/L)`-OTC (graph-width words, like
/// [`crate::otn::Otn::for_graphs`]).
///
/// # Errors
///
/// Returns [`ModelError`] if `adj` is not square with a power-of-two side
/// ≥ 4.
///
/// # Panics
///
/// Panics if the adjacency matrix is asymmetric or convergence exceeds
/// `4·log₂ n + 8` iterations.
///
/// # Example
///
/// ```
/// use orthotrees::{otc, Grid};
/// let mut adj = Grid::filled(8, 8, 0i64);
/// adj.set(1, 6, 1);
/// adj.set(6, 1, 1);
/// let out = otc::cc::connected_components(&adj)?;
/// assert_eq!(out.labels, vec![0, 1, 2, 3, 4, 5, 1, 7]);
/// # Ok::<(), orthotrees::ModelError>(())
/// ```
pub fn connected_components(adj: &Grid<Word>) -> Result<CcOutcome, ModelError> {
    let n = adj.rows();
    ModelError::require_equal("adjacency matrix sides", n, adj.cols())?;
    let (m, l) = Otc::dims_for(n)?;
    for (i, j, v) in adj.iter() {
        assert_eq!(
            Word::from(*v != 0),
            Word::from(*adj.get(j, i) != 0),
            "adjacency must be symmetric at ({i},{j})"
        );
    }

    let wbits = 2 * log2_ceil(n as u64).max(1) + 2;
    let mut net = Otc::new(m, l, CostModel::thompson(n).with_word_bits(wbits))?;
    let regs = CcRegs {
        aplanes: (0..l).map(|_| net.alloc_reg("A-plane")).collect(),
        d: net.alloc_reg("D"),
        prev: net.alloc_reg("prevD"),
        drow: net.alloc_reg("Drow"),
        dcol: net.alloc_reg("Dcol"),
        candplanes: (0..l).map(|_| net.alloc_reg("cand-plane")).collect(),
        pmin: net.alloc_reg("pmin"),
        minn: net.alloc_reg("minN"),
        creg: net.alloc_reg("C"),
        crow: net.alloc_reg("Crow"),
        lcand: net.alloc_reg("Lcand"),
        ldist: net.alloc_reg("Ldist"),
        fetch: net.alloc_reg("fetch"),
        newd: net.alloc_reg("newD"),
        chflag: net.alloc_reg("changed"),
    };
    for (r, &plane) in regs.aplanes.iter().enumerate() {
        net.load_reg(plane, |i, j, q| Some(Word::from(*adj.get(i * l + r, j * l + q) != 0)));
    }
    // D(v) = v at the diagonal cycles.
    net.load_reg(regs.d, |i, j, q| (i == j).then_some((i * l + q) as Word));

    let stats_before = *net.clock().stats();
    let max_iters = 4 * log2_ceil(n as u64).max(1) + 8;
    let mut iterations = 0u32;
    let (_, time) = net.elapsed(|net| loop {
        iterations += 1;
        assert!(
            iterations <= max_iters,
            "OTC connected components failed to converge within {max_iters} iterations"
        );
        // Snapshot for the convergence test.
        let (d, prev) = (regs.d, regs.prev);
        net.bp_phase(PhaseCost::Bit, move |i, j, q, v| (i == j).then(|| (prev, v.get(d, i, j, q))));

        distribute_labels(net, &regs);

        // Candidates: cand[r](q) = D(J·L+q) where A(I·L+r, J·L+q) = 1.
        let (dcol, aplanes, candplanes) =
            (regs.dcol, regs.aplanes.clone(), regs.candplanes.clone());
        net.cycle_phase(PhaseCost::Words(l as u64), move |_, _, cyc| {
            for r in 0..aplanes.len() {
                for q in 0..cyc.len() {
                    let c = match (cyc.get(aplanes[r], q), cyc.get(dcol, q)) {
                        (Some(a), lbl @ Some(_)) if a != 0 => lbl,
                        _ => None,
                    };
                    cyc.set(candplanes[r], q, c);
                }
            }
        });
        // Cycle-local partial minima, re-indexed so position r carries
        // row-offset r's minimum.
        let (candplanes, pmin) = (regs.candplanes.clone(), regs.pmin);
        net.cycle_phase(PhaseCost::Words(l as u64), move |_, _, cyc| {
            for (r, &plane) in candplanes.iter().enumerate() {
                let mut best: Option<Word> = None;
                for q in 0..cyc.len() {
                    if let Some(v) = cyc.get(plane, q) {
                        best = Some(best.map_or(v, |b: Word| b.min(v)));
                    }
                }
                cyc.set(pmin, r, best);
            }
        });
        // Row-group minima: minn(I, ·, r) = min over J of pmin.
        net.min_cycle_to_cycle(Axis::Rows, regs.pmin, |_, _, _, _| true, regs.minn, |_, _, _| true);
        // C(v) = min(D(v), minN(v)) at the diagonal.
        let (minn, creg) = (regs.minn, regs.creg);
        net.bp_phase(PhaseCost::Compare, move |i, j, q, v| {
            if i != j {
                return None;
            }
            let c = match (v.get(d, i, j, q), v.get(minn, i, j, q)) {
                (Some(dv), Some(mv)) => Some(dv.min(mv)),
                (Some(dv), None) => Some(dv),
                _ => None,
            };
            Some((creg, c))
        });
        // C streams along the rows like the labels do.
        net.cycle_to_cycle(Axis::Rows, regs.creg, |i, j, _, _| i == j, regs.crow, |_, _, _| true);
        // Group minima by label: lcand(I, J, q'') = min{ C(v) : v in row
        // group I, D(v) = J·L + q'' } — a cycle-local regroup…
        let (drow, crow, lcand) = (regs.drow, regs.crow, regs.lcand);
        let ll = l;
        net.cycle_phase(PhaseCost::Words(2 * l as u64), move |_, j, cyc| {
            for qq in 0..cyc.len() {
                let w = (j * ll + qq) as Word;
                let mut best: Option<Word> = None;
                for q in 0..cyc.len() {
                    if cyc.get(drow, q) == Some(w) {
                        if let Some(c) = cyc.get(crow, q) {
                            best = Some(best.map_or(c, |b: Word| b.min(c)));
                        }
                    }
                }
                cyc.set(lcand, qq, best);
            }
        });
        // …then down the column trees: ldist(·, J, q'') = L(J·L+q'').
        net.min_cycle_to_cycle(
            Axis::Cols,
            regs.lcand,
            |_, _, _, _| true,
            regs.ldist,
            |_, _, _| true,
        );
        // Members adopt their group's new label via the indirection fetch.
        indirect_fetch(net, &regs, regs.ldist, l);
        let newd = regs.newd;
        net.bp_phase(PhaseCost::Compare, move |i, j, q, v| {
            if i != j {
                return None;
            }
            v.get(newd, i, j, q).map(|nd| (d, Some(nd)))
        });

        // Shortcut: ⌈log₂ n⌉ pointer jumps D(v) := D(D(v)).
        for _ in 0..log2_ceil(n as u64).max(1) {
            distribute_labels(net, &regs);
            indirect_fetch(net, &regs, regs.dcol, l);
            let newd = regs.newd;
            net.bp_phase(PhaseCost::Compare, move |i, j, q, v| {
                if i != j {
                    return None;
                }
                v.get(newd, i, j, q).map(|nd| (d, Some(nd)))
            });
        }

        // Converged? Count changed labels through the column trees.
        let chflag = regs.chflag;
        net.bp_phase(PhaseCost::Compare, move |i, j, q, v| {
            let f = i == j && v.get(d, i, j, q) != v.get(prev, i, j, q);
            Some((chflag, Some(Word::from(f))))
        });
        net.sum_cycle_to_root(Axis::Cols, regs.chflag, |_, _, _, _| true);
        let changed: Word =
            net.roots(Axis::Cols).iter().flat_map(|buf| buf.iter()).map(|v| v.unwrap_or(0)).sum();
        if changed == 0 {
            break;
        }
    });

    // Emit labels through the column trees (diagonal positions line up).
    net.cycle_to_root(Axis::Cols, regs.d, |i, j, _, _| i == j);
    let mut labels = vec![0; n];
    for (j, buf) in net.roots(Axis::Cols).iter().enumerate() {
        for (q, v) in buf.iter().enumerate() {
            labels[j * l + q] = v.expect("every vertex has a label");
        }
    }
    let stats = net.clock().stats().since(&stats_before);
    debug_assert_eq!(labels, reference_components(adj));
    Ok(CcOutcome { labels, time, iterations, stats })
}

/// Streams the diagonal labels along both tree families; both streams are
/// position-indexed (`drow(I,J,q) = D(I·L+q)`, `dcol(I,J,q) = D(J·L+q)`).
fn distribute_labels(net: &mut Otc, regs: &CcRegs) {
    net.cycle_to_cycle(Axis::Rows, regs.d, |i, j, _, _| i == j, regs.drow, |_, _, _| true);
    net.cycle_to_cycle(Axis::Cols, regs.d, |i, j, _, _| i == j, regs.dcol, |_, _, _| true);
}

/// The two-hop indirection `newd(v) = table(D(v))`, where `table` is a
/// register whose column-distributed stream holds the table entry for
/// vertex `J·L+q` at `(·, J, q)` (true for both `ldist` and `dcol`):
/// each cycle checks whether its column hosts its row-group members'
/// targets, the row trees gather the unique hits, and the diagonal
/// receives the result in `newd`.
fn indirect_fetch(net: &mut Otc, regs: &CcRegs, table: Reg, l: usize) {
    let (drow, fetch) = (regs.drow, regs.fetch);
    net.cycle_phase(PhaseCost::Words(l as u64), move |_, j, cyc| {
        for q in 0..cyc.len() {
            let val = match cyc.get(drow, q) {
                Some(dv) => {
                    let (tj, tq) = ((dv as usize) / l, (dv as usize) % l);
                    if tj == j {
                        cyc.get(table, tq)
                    } else {
                        None
                    }
                }
                None => None,
            };
            cyc.set(fetch, q, val);
        }
    });
    net.cycle_to_cycle(
        Axis::Rows,
        regs.fetch,
        move |i, j, q, v| v.get(fetch, i, j, q).is_some(),
        regs.newd,
        |i, j, _| i == j,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_edges(n: usize, edges: &[(usize, usize)]) -> Grid<Word> {
        let mut g = Grid::filled(n, n, 0);
        for &(u, v) in edges {
            g.set(u, v, 1);
            g.set(v, u, 1);
        }
        g
    }

    fn check(n: usize, edges: &[(usize, usize)]) -> CcOutcome {
        let adj = from_edges(n, edges);
        let out = connected_components(&adj).unwrap();
        assert_eq!(out.labels, reference_components(&adj), "edges: {edges:?}");
        out
    }

    #[test]
    fn empty_graph_is_all_singletons() {
        let out = check(8, &[]);
        assert_eq!(out.labels, (0..8).collect::<Vec<Word>>());
    }

    #[test]
    fn single_edges_within_and_across_cycles() {
        // n = 16 → m = 4, L = 4: (1,3) stays inside a diagonal cycle's
        // group, (2,9) crosses groups.
        check(16, &[(1, 3)]);
        check(16, &[(2, 9)]);
        check(16, &[(1, 3), (2, 9), (9, 15)]);
    }

    #[test]
    fn path_star_cycle_families() {
        let n = 32;
        check(n, &(0..n - 1).map(|v| (v, v + 1)).collect::<Vec<_>>());
        check(n, &(1..n).map(|v| (0, v)).collect::<Vec<_>>());
        check(n, &(0..n).map(|v| (v, (v + 1) % n)).collect::<Vec<_>>());
    }

    #[test]
    fn random_graphs_match_union_find() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xD1CE);
        for &n in &[16usize, 32, 64] {
            for density in [0.03, 0.1, 0.4] {
                let mut edges = Vec::new();
                for u in 0..n {
                    for v in (u + 1)..n {
                        if rng.random::<f64>() < density {
                            edges.push((u, v));
                        }
                    }
                }
                check(n, &edges);
            }
        }
    }

    #[test]
    fn otc_time_is_comparable_to_otn_time() {
        // The §V claim for a graph algorithm, measured directly.
        let n = 64;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|v| (v, v + 1)).collect();
        let adj = from_edges(n, &edges);
        let otc_out = connected_components(&adj).unwrap();
        let otn_out = crate::otn::graph::cc::connected_components(&adj).unwrap();
        let ratio = otc_out.time.as_f64() / otn_out.time.as_f64();
        assert!((0.2..5.0).contains(&ratio), "OTC/OTN CC time ratio {ratio:.2}");
    }

    #[test]
    fn iterations_stay_logarithmic() {
        let n = 64;
        let out = check(n, &(0..n - 1).map(|v| (v, v + 1)).collect::<Vec<_>>());
        assert!(out.iterations <= 2 * 6 + 2, "path took {} iterations", out.iterations);
    }

    #[test]
    fn rejects_tiny_and_crooked_inputs() {
        assert!(connected_components(&Grid::filled(2, 2, 0)).is_err(), "n < 4");
        assert!(connected_components(&Grid::filled(6, 6, 0)).is_err());
    }
}
