//! A minimal complex number for the DFT of §IV.
//!
//! The paper computes a discrete Fourier transform; its communication
//! structure — not the arithmetic field — is what the area/time analysis
//! prices, so a small `f64` complex type suffices (and avoids pulling in a
//! numerics dependency).

use std::ops::{Add, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Constructs `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The primitive `n`-th root of unity `e^(-2πi/n)` (the forward-DFT
    /// convention), raised to the power `k`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn root_of_unity(n: usize, k: usize) -> Self {
        assert!(n > 0, "root_of_unity needs n > 0");
        let theta = -2.0 * std::f64::consts::PI * (k as f64) / (n as f64);
        Complex::new(theta.cos(), theta.sin())
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Scales by a real factor.
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Naive `O(n²)` reference DFT: `X[k] = Σ_j x[j]·ω^(jk)`.
pub fn naive_dft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            x.iter().enumerate().fold(Complex::ZERO, |acc, (j, &v)| {
                acc + v * Complex::root_of_unity(n, j * k % n.max(1))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert!(close(a + b, b + a));
        assert!(close(a * b, b * a));
        assert!(close(a * (b + Complex::ONE), a * b + a));
        assert!(close(-a + a, Complex::ZERO));
        assert!(close(a.conj().conj(), a));
    }

    #[test]
    fn roots_of_unity_cycle() {
        let w = Complex::root_of_unity(8, 1);
        let mut p = Complex::ONE;
        for _ in 0..8 {
            p = p * w;
        }
        assert!(close(p, Complex::ONE), "ω⁸ = 1");
        assert!(close(Complex::root_of_unity(8, 4), Complex::new(-1.0, 0.0)), "ω⁴ = −1");
    }

    #[test]
    fn naive_dft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        let y = naive_dft(&x);
        assert!(y.iter().all(|&v| close(v, Complex::ONE)));
    }

    #[test]
    fn naive_dft_of_constant_is_impulse() {
        let x = vec![Complex::ONE; 8];
        let y = naive_dft(&x);
        assert!(close(y[0], Complex::new(8.0, 0.0)));
        assert!(y[1..].iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn abs_and_scale() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert!(close(z.scale(2.0), Complex::new(6.0, 8.0)));
    }
}
