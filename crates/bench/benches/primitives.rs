//! Primitive-operation microbenches: the §II.B communication operations on
//! the OTN, the §V.B stream operations on the OTC, and the bit-level event
//! simulator they are validated against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orthotrees::otn::{all, Axis, Otn};
use orthotrees_sim::experiments;
use orthotrees_vlsi::CostModel;
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &n in &[64usize, 256] {
        group.bench_with_input(BenchmarkId::new("roottoleaf", n), &n, |b, _| {
            let mut net = Otn::for_sorting(n).unwrap();
            let a = net.alloc_reg("A");
            net.load_row_roots(&(0..n as i64).collect::<Vec<_>>());
            b.iter(|| {
                net.root_to_leaf(Axis::Rows, a, all);
                black_box(net.clock().now())
            });
        });
        group.bench_with_input(BenchmarkId::new("sum_leaftoroot", n), &n, |b, _| {
            let mut net = Otn::for_sorting(n).unwrap();
            let a = net.alloc_reg("A");
            net.load_reg(a, |i, j| Some((i + j) as i64));
            b.iter(|| {
                net.sum_to_root(Axis::Cols, a, all);
                black_box(net.clock().now())
            });
        });
        group.bench_with_input(BenchmarkId::new("event_sim_broadcast", n), &n, |b, _| {
            let m = CostModel::thompson(n);
            b.iter(|| black_box(experiments::broadcast_completion_time(n, &m).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
