//! A dense row-major 2-D grid, the storage behind every register plane.

use std::fmt;

/// A dense `rows × cols` grid.
#[derive(Clone, PartialEq, Eq)]
pub struct Grid<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Clone> Grid<T> {
    /// A grid filled with clones of `fill`.
    pub fn filled(rows: usize, cols: usize, fill: T) -> Self {
        Grid { rows, cols, data: vec![fill; rows * cols] }
    }
}

impl<T> Grid<T> {
    /// Builds a grid from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Grid { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable cell access.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, row: usize, col: usize) -> &T {
        assert!(
            row < self.rows && col < self.cols,
            "({row},{col}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }

    /// Mutable cell access.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut T {
        assert!(
            row < self.rows && col < self.cols,
            "({row},{col}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }

    /// Sets a cell.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        *self.get_mut(row, col) = value;
    }

    /// Iterates `(row, col, &value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        let cols = self.cols;
        self.data.iter().enumerate().map(move |(k, v)| (k / cols, k % cols, v))
    }

    /// The backing storage as one flat row-major slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat row-major access (bulk operations such as checkpoint
    /// restore).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row {row} out of {}", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }
}

impl<T: fmt::Debug> fmt::Debug for Grid<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Grid {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_indexing() {
        let mut g = Grid::filled(2, 3, 0i64);
        g.set(1, 2, 9);
        assert_eq!(*g.get(1, 2), 9);
        assert_eq!(*g.get(0, 0), 0);
        assert_eq!(g.rows(), 2);
        assert_eq!(g.cols(), 3);
    }

    #[test]
    fn from_fn_row_major() {
        let g = Grid::from_fn(2, 2, |i, j| 10 * i + j);
        assert_eq!(g.row(0), &[0, 1]);
        assert_eq!(g.row(1), &[10, 11]);
    }

    #[test]
    fn iter_yields_coordinates() {
        let g = Grid::from_fn(2, 3, |i, j| (i, j));
        for (i, j, v) in g.iter() {
            assert_eq!(*v, (i, j));
        }
        assert_eq!(g.iter().count(), 6);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_panics() {
        let g = Grid::filled(2, 2, 0u8);
        let _ = g.get(2, 0);
    }

    #[test]
    fn debug_renders_rows() {
        let g = Grid::from_fn(2, 2, |i, j| i + j);
        let s = format!("{g:?}");
        assert!(s.contains("Grid 2x2"));
        assert!(s.contains("[1, 2]"));
    }
}
