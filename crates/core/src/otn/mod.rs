//! The orthogonal trees network (paper §II).
//!
//! An `(R × C)`-OTN is a matrix of *base processors* (BPs) in which every
//! row and every column of BPs forms the leaves of a complete binary tree of
//! *internal processors* (IPs). BPs hold a small set of `O(log N)`-bit
//! registers; IPs only relay (and, for the aggregating primitives, combine)
//! words moving between the BPs and the tree roots. The roots of the row
//! trees are the network's input ports and the roots of the column trees its
//! output ports (§II.A).
//!
//! [`Otn`] implements the structure *functionally* while charging every
//! primitive's cost — derived from the layout's wire lengths under the
//! active delay model — to a simulated clock. Algorithms (submodules
//! [`sort`], [`matmul`], [`graph`], [`bitonic`], [`dft`], [`pipeline`]) are
//! written purely in terms of these primitives, exactly as the paper's
//! procedures are.

pub mod bitonic;
pub mod checkpoint;
pub mod dft;
pub mod graph;
pub mod matmul;
pub mod pipeline;
pub mod prefix;
pub mod sort;

use crate::grid::Grid;
use crate::primitive::{self, Acc, ParallelPolicy, PrimitiveSpec};
use crate::resilience::{self, FaultPlan, FaultReport, FaultState, FaultStats};
use crate::word::Word;
use orthotrees_obs::telemetry::Telemetry;
use orthotrees_obs::{causal::ReachCell, Recorder};
use orthotrees_vlsi::{log2_ceil, BitTime, Clock, CostKind, CostModel, ModelError};

/// Handle to a named register plane allocated with [`Otn::alloc_reg`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reg(usize);

impl Reg {
    /// The plane's index in allocation order — the `reg` coordinate of
    /// reach events and the key into [`Otn::reg_names`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// Which family of trees an operation runs on.
///
/// The paper writes `ROOTTOLEAF(row(i), …)` / `…(column(i), …)`; because a
/// tree operation costs the same whether one tree or all parallel trees of a
/// family take part (the hardware is there either way), the primitives here
/// always run a whole family in parallel — operating on a single row is the
/// special case of a selector that ignores the others.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The row trees: one tree per row, leaves indexed by column.
    Rows,
    /// The column trees: one tree per column, leaves indexed by row.
    Cols,
}

impl Axis {
    /// The opposite family.
    #[must_use]
    pub fn flip(self) -> Axis {
        match self {
            Axis::Rows => Axis::Cols,
            Axis::Cols => Axis::Rows,
        }
    }
}

/// Cost class of a parallel base-processor compute phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseCost {
    /// Single-bit logic (flag set/test).
    Bit,
    /// One bit-serial comparison of two words.
    Compare,
    /// One bit-serial addition.
    Add,
    /// One serial-pipeline multiplication (refs \[6\], \[13\]).
    Multiply,
    /// `k` word-times (compound local step).
    Words(u64),
}

/// Read-only view of all register planes, handed to selectors so they can
/// express the paper's register predicates (e.g. SORT-OTN step 5's
/// `j : R(j, i) = i`).
pub struct RegsView<'a> {
    regs: &'a [Grid<Option<Word>>],
}

impl RegsView<'_> {
    /// The value of register `r` at BP `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the register or coordinates are out of range.
    pub fn get(&self, r: Reg, row: usize, col: usize) -> Option<Word> {
        *self.regs[r.0].get(row, col)
    }
}

/// Per-BP register access during a compute phase.
pub struct BpRegs<'a> {
    regs: &'a mut [Grid<Option<Word>>],
    row: usize,
    col: usize,
}

impl BpRegs<'_> {
    /// This BP's value of register `r`.
    pub fn get(&self, r: Reg) -> Option<Word> {
        *self.regs[r.0].get(self.row, self.col)
    }

    /// Sets this BP's register `r`.
    pub fn set(&mut self, r: Reg, v: Option<Word>) {
        self.regs[r.0].set(self.row, self.col, v);
    }
}

/// The orthogonal trees network.
///
/// See the [module documentation](self) for the structure; see
/// [`Otn::for_sorting`] / [`Otn::for_graphs`] / [`Otn::wide`] for the
/// constructors the algorithms use.
#[derive(Clone, Debug)]
pub struct Otn {
    rows: usize,
    cols: usize,
    model: CostModel,
    pitch: u64,
    clock: Clock,
    regs: Vec<Grid<Option<Word>>>,
    reg_names: Vec<&'static str>,
    row_roots: Vec<Option<Word>>,
    col_roots: Vec<Option<Word>>,
    /// Installed fault scenario; `None` keeps every primitive on the exact
    /// fault-free path.
    fault: Option<FaultState>,
    /// Installed observability recorder; `None` (the default) keeps every
    /// primitive free of recording code. Recording never changes a
    /// simulated bit, time, or output.
    recorder: Option<Recorder>,
    /// Installed streaming telemetry bus; same contract as `recorder`.
    telemetry: Option<Telemetry>,
    /// How the per-tree independent gather of each primitive executes.
    parallel: ParallelPolicy,
}

impl Otn {
    /// Creates an `(rows × cols)`-OTN under `model`.
    ///
    /// The leaf pitch is taken from the layout convention of
    /// `orthotrees-layout`: `word_bits + max(log₂ rows, log₂ cols) + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] unless both dimensions are powers of two.
    pub fn new(rows: usize, cols: usize, model: CostModel) -> Result<Self, ModelError> {
        ModelError::require_power_of_two("OTN row count", rows)?;
        ModelError::require_power_of_two("OTN column count", cols)?;
        let depth = log2_ceil(rows.max(cols) as u64);
        let pitch = u64::from(model.word_bits) + u64::from(depth) + 1;
        Ok(Otn {
            rows,
            cols,
            model,
            pitch,
            clock: Clock::new(),
            regs: Vec::new(),
            reg_names: Vec::new(),
            row_roots: vec![None; rows],
            col_roots: vec![None; cols],
            fault: None,
            recorder: None,
            telemetry: None,
            parallel: ParallelPolicy::default(),
        })
    }

    /// Sets how the per-tree independent portions of each primitive
    /// execute (see [`ParallelPolicy`]). Both policies are bit- and
    /// clock-identical — asserted by property tests; `Threads` trades
    /// scoped-thread overhead for wall-clock speedup on large networks.
    pub fn set_parallel_policy(&mut self, policy: ParallelPolicy) {
        self.parallel = policy;
    }

    /// The active parallel execution policy.
    pub fn parallel_policy(&self) -> ParallelPolicy {
        self.parallel
    }

    /// A square `(n × n)`-OTN under Thompson's model with word width
    /// `⌈log₂ n⌉` — the configuration SORT-OTN assumes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] unless `n` is a power of two.
    pub fn for_sorting(n: usize) -> Result<Self, ModelError> {
        Otn::new(n, n, CostModel::thompson(n))
    }

    /// A square `(n × n)`-OTN whose words are wide enough for the packed
    /// `(key, index)` pairs the graph algorithms transmit
    /// (`2⌈log₂ n⌉ + 2` bits; see [`crate::pack`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] unless `n` is a power of two.
    pub fn for_graphs(n: usize) -> Result<Self, ModelError> {
        let w = 2 * log2_ceil(n as u64).max(1) + 2;
        Otn::new(n, n, CostModel::thompson(n).with_word_bits(w))
    }

    /// A rectangular OTN (used by the wide matrix-multiplication networks
    /// of §III/§VI, whose row count is the *square* of the matrix side).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] unless both dimensions are powers of two.
    pub fn wide(rows: usize, cols: usize) -> Result<Self, ModelError> {
        Otn::new(rows, cols, CostModel::thompson(rows.max(cols)))
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The active cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The leaf pitch used for wire pricing.
    pub fn pitch(&self) -> u64 {
        self.pitch
    }

    /// The simulated clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Resets the clock and statistics (registers keep their contents).
    pub fn reset_clock(&mut self) {
        self.clock.reset();
    }

    /// Runs `f` and returns its result together with the elapsed simulated
    /// time.
    pub fn elapsed<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> (R, BitTime) {
        let before = self.clock.now();
        let r = f(self);
        (r, self.clock.now() - before)
    }

    /// Allocates a fresh register plane (initially all `NULL`).
    pub fn alloc_reg(&mut self, name: &'static str) -> Reg {
        self.regs.push(Grid::filled(self.rows, self.cols, None));
        self.reg_names.push(name);
        Reg(self.regs.len() - 1)
    }

    /// The allocated register-plane names, in [`Reg::index`] order — the
    /// register-file shape static analyses resolve reach events against.
    pub fn reg_names(&self) -> &[&'static str] {
        &self.reg_names
    }

    /// Number of allocated register planes.
    pub fn reg_count(&self) -> usize {
        self.regs.len()
    }

    /// Number of leaves of one tree of `axis`.
    pub fn leaves(&self, axis: Axis) -> usize {
        match axis {
            Axis::Rows => self.cols,
            Axis::Cols => self.rows,
        }
    }

    /// Number of trees of `axis`.
    pub fn trees(&self, axis: Axis) -> usize {
        match axis {
            Axis::Rows => self.rows,
            Axis::Cols => self.cols,
        }
    }

    fn roots_mut(&mut self, axis: Axis) -> &mut Vec<Option<Word>> {
        match axis {
            Axis::Rows => &mut self.row_roots,
            Axis::Cols => &mut self.col_roots,
        }
    }

    /// The root registers of `axis` (row roots = input ports, column roots
    /// = output ports).
    pub fn roots(&self, axis: Axis) -> &[Option<Word>] {
        match axis {
            Axis::Rows => &self.row_roots,
            Axis::Cols => &self.col_roots,
        }
    }

    /// Grid coordinates of leaf `leaf` of tree `tree` along `axis`.
    fn coords(axis: Axis, tree: usize, leaf: usize) -> (usize, usize) {
        match axis {
            Axis::Rows => (tree, leaf),
            Axis::Cols => (leaf, tree),
        }
    }

    // ------------------------------------------------------------------
    // I/O (free: the paper assumes operands "initially available at the
    // input ports" / "initially stored in the base"; the pipelined input
    // costs are charged by the algorithms that model streaming input).
    // ------------------------------------------------------------------

    /// Places one word at each row root (input ports).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows`.
    pub fn load_row_roots(&mut self, values: &[Word]) {
        assert_eq!(values.len(), self.rows, "one value per row root");
        self.row_roots = values.iter().map(|&v| Some(v)).collect();
        self.clock.stats_mut().inputs += values.len() as u64;
    }

    /// Reads the column roots (output ports).
    pub fn read_col_roots(&self) -> Vec<Option<Word>> {
        self.col_roots.clone()
    }

    /// Loads a full register plane from `f(row, col)` (initial operand
    /// placement).
    pub fn load_reg(&mut self, r: Reg, mut f: impl FnMut(usize, usize) -> Option<Word>) {
        for i in 0..self.rows {
            for j in 0..self.cols {
                self.regs[r.0].set(i, j, f(i, j));
            }
        }
        self.clock.stats_mut().inputs += (self.rows * self.cols) as u64;
    }

    /// Reads one register value (host-side inspection, free).
    pub fn peek(&self, r: Reg, row: usize, col: usize) -> Option<Word> {
        *self.regs[r.0].get(row, col)
    }

    /// Writes one register value without charging time — for use *inside*
    /// primitive implementations whose cost is charged explicitly (e.g.
    /// the scan primitives in [`prefix`]); algorithms should use
    /// [`Otn::bp_phase`] or the communication primitives instead.
    pub(crate) fn poke(&mut self, r: Reg, row: usize, col: usize, v: Option<Word>) {
        self.regs[r.0].set(row, col, v);
    }

    /// Mutable clock access for primitive implementations in sibling
    /// modules.
    pub(crate) fn clock_mut(&mut self) -> &mut Clock {
        &mut self.clock
    }

    /// Advances the clock by `expected` while recording its causal
    /// decomposition `parts` (see [`crate::attribution`]).
    pub(crate) fn seg_charge(&mut self, expected: BitTime, parts: &[crate::attribution::Part]) {
        crate::attribution::seg_charge(&mut self.clock, &mut self.recorder, expected, parts);
        if let Some(tel) = &mut self.telemetry {
            tel.count("otn.charges", 1);
            tel.observe("otn.charge_tau", expected.get());
            tel.tick(self.clock.now());
        }
    }

    // ------------------------------------------------------------------
    // Observability (see [`orthotrees_obs`]). Every primitive wraps its
    // clock advances in a span named after the paper's primitive, so the
    // recorder's per-phase self times sum exactly to the elapsed time.
    // ------------------------------------------------------------------

    /// Installs an observability [`Recorder`]: subsequent primitives open
    /// spans named after the paper's operations (`ROOTTOLEAF`,
    /// `LEAFTOROOT`, …) on the simulated clock. Recording changes no
    /// simulated bit, time, or output (bit-identity, enforced by tests).
    pub fn install_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    /// The installed recorder, if any.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    /// Removes and returns the installed recorder (export after a run).
    pub fn take_recorder(&mut self) -> Option<Recorder> {
        self.recorder.take()
    }

    /// Installs a streaming [`Telemetry`] bus: every subsequent clock
    /// charge is counted (`otn.charges`), its magnitude fed to the
    /// `otn.charge_tau` quantile sketch, and periodic counter snapshots
    /// are cut on the simulated clock. Metering changes no simulated bit,
    /// time, or output (bit-identity, enforced by the telemetry suite).
    pub fn install_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// The installed telemetry bus, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Mutable access to the installed telemetry bus (algorithms fold
    /// their own domain counters into the export through this).
    pub fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        self.telemetry.as_mut()
    }

    /// Removes and returns the installed telemetry bus (export after a
    /// run).
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.telemetry.take()
    }

    /// Opens a named phase span at the current simulated time (no-op
    /// without a recorder). Spans nest; close with [`Otn::end_phase`].
    /// Algorithms use this to group primitive spans under procedure-level
    /// phases (e.g. `SORT-OTN`).
    pub fn begin_phase(&mut self, name: impl Into<String>) {
        if let Some(rec) = &mut self.recorder {
            let now = self.clock.now();
            rec.open(name, now);
        }
    }

    /// Closes the most recently opened phase span (no-op without a
    /// recorder).
    pub fn end_phase(&mut self) {
        if let Some(rec) = &mut self.recorder {
            let now = self.clock.now();
            rec.close(now);
        }
    }

    // ------------------------------------------------------------------
    // Fault injection, detection and graceful degradation (see
    // [`crate::resilience`]). An installed *empty* plan changes nothing.
    // ------------------------------------------------------------------

    /// Installs a deterministic fault scenario for all subsequent
    /// primitives and returns the degradation verdicts for its dead IPs:
    /// which subtrees were rerouted through their sibling, and which leaves
    /// went dark.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) -> &FaultReport {
        self.fault = Some(FaultState::new(plan, self.rows, self.cols, self.cols, self.rows));
        &self.fault.as_ref().expect("just installed").report
    }

    /// Whether a fault plan is installed.
    pub fn has_fault_plan(&self) -> bool {
        self.fault.is_some()
    }

    /// The degradation report of the installed plan, if any.
    pub fn fault_report(&self) -> Option<&FaultReport> {
        self.fault.as_ref().map(|f| &f.report)
    }

    /// Counters for the faults injected so far (all zero with no plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Whether `leaf` of `tree` along `axis` is cut off by a dead IP.
    fn is_dark(&self, axis: Axis, tree: usize, leaf: usize) -> bool {
        self.fault.as_ref().is_some_and(|f| f.is_dark(axis, tree, leaf))
    }

    /// Whether the installed recorder asked for reach events. `false`
    /// whenever no recorder is installed or tracing was not enabled, so
    /// the plain profiling path stays free of reach bookkeeping.
    fn reach_tracing(&self) -> bool {
        self.recorder.as_ref().is_some_and(Recorder::reach_enabled)
    }

    /// Opens a new transit round for the next faultable primitive.
    fn begin_fault_round(&mut self) {
        if let Some(f) = &mut self.fault {
            f.next_round();
        }
    }

    /// One word transit at `(axis, tree, leaf)` under the installed plan
    /// (identity without one). Returns the delivered word and extra
    /// attempts used.
    fn word_transit(
        &mut self,
        axis: Axis,
        tree: usize,
        leaf: usize,
        value: Option<Word>,
    ) -> (Option<Word>, u32) {
        let width = self.model.word_bits;
        match &mut self.fault {
            Some(f) => f.transit(resilience::site(axis, tree, leaf), value, width),
            None => (value, 0),
        }
    }

    /// Charges the time overhead a faultable primitive on `axis` incurred:
    /// `attempts` retransmission rounds of `base`, plus the lateral
    /// crossing penalty when the axis has rerouted subtrees.
    fn charge_fault_overhead(&mut self, axis: Axis, attempts: u32, base: BitTime) {
        let Some(f) = &self.fault else { return };
        let span = f.reroute_span[match axis {
            Axis::Rows => 0,
            Axis::Cols => 1,
        }];
        let mut extra = base * u64::from(attempts);
        if span > 0 {
            // Detour through the sibling subtree: down from the common
            // parent and across, like a leaf-to-leaf hop within the
            // doubled subtree.
            extra += self.model.tree_leaf_to_leaf(2 * span, self.pitch);
        }
        if extra > BitTime::ZERO {
            // Attributed as its own (nested) phase so a faulty run's
            // slowdown is visible in the time-attribution table; causally
            // it is pure waiting (retransmission rounds / detour latency).
            self.begin_phase(primitive::spec_for("FAULT-OVERHEAD").name);
            self.seg_charge(extra, &crate::attribution::wait_parts(extra));
            self.end_phase();
        }
        if let Some(rec) = &mut self.recorder {
            rec.count("fault.retry_rounds", u64::from(attempts));
        }
    }

    // ------------------------------------------------------------------
    // The shared descriptor-driven executor (tentpole of the primitive
    // registry). Every §II.B primitive below is a thin call into these:
    // selector gather (fanned out per tree under ParallelPolicy::Threads)
    // → fault round → per-word transit → register/root writes → one
    // registry-derived charge.
    // ------------------------------------------------------------------

    /// Charges `spec`'s registry cost kind once for the whole tree family
    /// of `axis`: the clock charge, its causal segment decomposition, the
    /// matching operation statistic and the fault-overhead base all derive
    /// from the same [`CostKind`], so they can never disagree.
    fn charge_primitive(&mut self, spec: &PrimitiveSpec, axis: Axis, attempts: u32) {
        let leaves = self.leaves(axis);
        // Invariant: executors only charge registry primitives that declare
        // a cost kind (the registry coverage tests pin this statically), so
        // a `None` is a registry-definition bug, not a runtime state.
        let kind = spec.cost.unwrap_or_else(|| panic!("{} declares no cost kind", spec.name));
        let t = self.model.primitive_cost(kind, leaves, self.pitch, 1);
        let parts = crate::attribution::primitive_parts(&self.model, kind, leaves, self.pitch, 1);
        self.seg_charge(t, &parts);
        let stats = self.clock.stats_mut();
        match kind {
            CostKind::Broadcast | CostKind::StreamBroadcast => stats.broadcasts += 1,
            CostKind::Send | CostKind::StreamSend => stats.sends += 1,
            CostKind::Aggregate | CostKind::StreamAggregate => stats.aggregates += 1,
            CostKind::CycleStep => stats.circulates += 1,
        }
        self.charge_fault_overhead(axis, attempts, t);
    }

    /// The downward executor (`ROOTTOLEAF`): gathers every tree's selected
    /// leaves, then transits and writes each delivered word in tree order,
    /// then charges the registry cost.
    ///
    /// [`DownWrites`] is the per-tree gather result: one
    /// `(tree, leaf, row, col, value)` tuple per selected leaf.
    fn tree_downward(
        &mut self,
        name: &str,
        axis: Axis,
        dest: Reg,
        sel: &(impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync),
    ) {
        let spec = primitive::spec_for(name);
        debug_assert!(
            crate::dflow::shape_of(spec) == Some(crate::dflow::FlowShape::Down),
            "{} is not a Down-shaped primitive",
            spec.name
        );
        self.begin_phase(spec.name);
        let (trees, leaves) = (self.trees(axis), self.leaves(axis));
        let writes: Vec<DownWrites> = {
            let view = RegsView { regs: &self.regs };
            primitive::per_tree(self.parallel, trees, |t| {
                let value = self.roots(axis)[t];
                (0..leaves)
                    .filter_map(|l| {
                        let (i, j) = Self::coords(axis, t, l);
                        (sel(i, j, &view) && !self.is_dark(axis, t, l))
                            .then_some((t, l, i, j, value))
                    })
                    .collect()
            })
        };
        self.begin_fault_round();
        let tracing = self.reach_tracing();
        if let Some(rec) = self.recorder.as_mut().filter(|_| tracing) {
            rec.reach_round_begin();
        }
        let mut attempts = 0;
        for (t, l, i, j, v) in writes.into_iter().flatten() {
            let (v, att) = self.word_transit(axis, t, l, v);
            attempts = attempts.max(att);
            self.regs[dest.0].set(i, j, v);
            if let Some(rec) = self.recorder.as_mut().filter(|_| tracing) {
                rec.reach(
                    t as u64,
                    ReachCell::Root,
                    ReachCell::Reg { reg: dest.0 as u64, leaf: l as u64 },
                );
            }
        }
        self.charge_primitive(spec, axis, attempts);
        self.end_phase();
    }

    /// The upward executor (`LEAFTOROOT` and the aggregates): folds each
    /// tree's selected leaves through `spec`'s combine [`Monoid`]
    /// (`crate::primitive::Monoid`), then transits each root word in tree
    /// order and charges the registry cost.
    fn tree_upward(
        &mut self,
        name: &str,
        axis: Axis,
        src: Reg,
        sel: &(impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync),
    ) {
        let spec = primitive::spec_for(name);
        // Invariant: aggregate executors are only called with registry
        // primitives that declare a combine monoid (pinned by the registry
        // coverage tests) — a `None` is a registry-definition bug.
        let monoid =
            spec.combine.unwrap_or_else(|| panic!("{} declares no combine monoid", spec.name));
        debug_assert!(
            crate::dflow::shape_of(spec) == Some(crate::dflow::FlowShape::Up),
            "{} is not an Up-shaped primitive",
            spec.name
        );
        self.begin_phase(spec.name);
        let (trees, leaves) = (self.trees(axis), self.leaves(axis));
        let degraded = self.fault.is_some();
        let tracing = self.reach_tracing();
        let gathered: Vec<(Option<Word>, Vec<usize>)> = {
            let view = RegsView { regs: &self.regs };
            primitive::per_tree(self.parallel, trees, |t| {
                let mut acc = Acc::new(monoid);
                // Contributor leaves are only collected under reach
                // tracing; the Vec stays empty (no allocation) otherwise.
                let mut contributors = Vec::new();
                for l in 0..leaves {
                    let (i, j) = Self::coords(axis, t, l);
                    if sel(i, j, &view) && !self.is_dark(axis, t, l) {
                        if tracing {
                            contributors.push(l);
                        }
                        // On First contention under faults, the fold keeps
                        // the first word (corrupted ranks legitimately
                        // collide); in a healthy net it is an invariant
                        // violation.
                        acc.fold(view.get(src, i, j), || {
                            assert!(
                                degraded,
                                "{} contention: tree {t} of {axis:?} selected twice \
                                 (invariant: the Selector specifies one BP per tree)",
                                spec.name
                            );
                        });
                    }
                }
                (acc.finish(), contributors)
            })
        };
        if let Some(rec) = self.recorder.as_mut().filter(|_| tracing) {
            rec.reach_round_begin();
            for (t, (_, contributors)) in gathered.iter().enumerate() {
                for &l in contributors {
                    rec.reach(
                        t as u64,
                        ReachCell::Reg { reg: src.0 as u64, leaf: l as u64 },
                        ReachCell::Root,
                    );
                }
            }
        }
        let mut new_roots: Vec<Option<Word>> = gathered.into_iter().map(|(v, _)| v).collect();
        self.begin_fault_round();
        let mut attempts = 0;
        for (t, root) in new_roots.iter_mut().enumerate() {
            let (v, att) = self.word_transit(axis, t, resilience::TREE_SITE, *root);
            attempts = attempts.max(att);
            *root = v;
        }
        *self.roots_mut(axis) = new_roots;
        self.charge_primitive(spec, axis, attempts);
        self.end_phase();
    }

    /// The composite executor: opens `name`'s enclosing registry span and
    /// runs its two legs (each charges itself).
    fn composite(&mut self, name: &str, f: impl FnOnce(&mut Self)) {
        let spec = primitive::spec_for(name);
        debug_assert!(spec.composite_of.is_some(), "{} is not a composite", spec.name);
        self.begin_phase(spec.name);
        f(self);
        self.end_phase();
    }

    /// The model price of a [`PhaseCost`] class.
    fn phase_cost(&self, cost: PhaseCost) -> BitTime {
        match cost {
            PhaseCost::Bit => self.model.bit_op(),
            PhaseCost::Compare => self.model.compare(),
            PhaseCost::Add => self.model.add(),
            PhaseCost::Multiply => self.model.multiply(),
            PhaseCost::Words(k) => self.model.compare() * k,
        }
    }

    /// Charges a local compute phase of duration `t` under its registry
    /// span name.
    fn charge_compute(&mut self, name: &str, t: BitTime) {
        let spec = primitive::spec_for(name);
        self.begin_phase(spec.name);
        self.seg_charge(t, &crate::attribution::compute_parts(t));
        self.end_phase();
        self.clock.stats_mut().leaf_ops += 1;
    }

    // ------------------------------------------------------------------
    // Primitive operations (§II.B). Each charges its model cost once for
    // the whole parallel tree family.
    // ------------------------------------------------------------------

    /// `ROOTTOLEAF(Vector, Dest)`: each tree of `axis` broadcasts its root
    /// register to its selected leaves, which store it in `dest`.
    ///
    /// The selector receives `(row, col, view)` grid coordinates.
    ///
    /// Under an installed [`FaultPlan`], each leaf's delivered copy is an
    /// independent transit (parity-checked, retried, possibly erased or
    /// silently corrupted), and dark leaves receive nothing.
    pub fn root_to_leaf(
        &mut self,
        axis: Axis,
        dest: Reg,
        sel: impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync,
    ) {
        self.tree_downward("ROOTTOLEAF", axis, dest, &sel);
    }

    /// `LEAFTOROOT(Vector, Source)`: in each tree of `axis`, the selected
    /// BP's `src` register travels to the root. Selecting no BP leaves the
    /// root `NULL`.
    ///
    /// Under an installed [`FaultPlan`], dark leaves cannot reach their
    /// root, the ascending word is one parity-checked transit per tree,
    /// and selector contention keeps the first selected BP instead of
    /// panicking (corrupted ranks legitimately collide).
    ///
    /// # Panics
    ///
    /// Without a fault plan, panics if a tree has more than one selected
    /// BP — invariant: the paper's Selector "specifies one BP in Vector",
    /// the tree being a single channel.
    pub fn leaf_to_root(
        &mut self,
        axis: Axis,
        src: Reg,
        sel: impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync,
    ) {
        self.tree_upward("LEAFTOROOT", axis, src, &sel);
    }

    /// `COUNT-LEAFTOROOT(Vector)`: each root receives the number of leaves
    /// whose `flag` register is a non-zero word (§II.B primitive 3).
    /// Dark leaves contribute nothing under an installed [`FaultPlan`].
    pub fn count_to_root(&mut self, axis: Axis, flag: Reg) {
        let sel = move |i: usize, j: usize, view: &RegsView<'_>| matches!(view.get(flag, i, j), Some(v) if v != 0);
        self.tree_upward("COUNT-LEAFTOROOT", axis, flag, &sel);
    }

    /// `SUM-LEAFTOROOT(Vector, Source)`: each root receives the sum of the
    /// selected leaves' `src` registers (`NULL` values contribute nothing;
    /// an empty selection sums to 0).
    pub fn sum_to_root(
        &mut self,
        axis: Axis,
        src: Reg,
        sel: impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync,
    ) {
        self.tree_upward("SUM-LEAFTOROOT", axis, src, &sel);
    }

    /// `MIN-LEAFTOROOT(Vector, Source)`: each root receives the minimum of
    /// the selected leaves' non-`NULL` `src` registers (`NULL` if none).
    pub fn min_to_root(
        &mut self,
        axis: Axis,
        src: Reg,
        sel: impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync,
    ) {
        self.tree_upward("MIN-LEAFTOROOT", axis, src, &sel);
    }

    /// `MAX-LEAFTOROOT`: each root receives the maximum of the selected
    /// leaves' non-`NULL` `src` registers (`NULL` if none) — the mirror of
    /// [`Otn::min_to_root`], same MSB-first bit-serial cost.
    pub fn max_to_root(
        &mut self,
        axis: Axis,
        src: Reg,
        sel: impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync,
    ) {
        self.tree_upward("MAX-LEAFTOROOT", axis, src, &sel);
    }

    // ------------------------------------------------------------------
    // Composite operations (§II.B): source primitive + ROOTTOLEAF.
    // ------------------------------------------------------------------

    /// `LEAFTOLEAF(Vector, Source, Dest)` (§II.B composite 1).
    ///
    /// # Panics
    ///
    /// Panics on source contention, like [`Otn::leaf_to_root`].
    pub fn leaf_to_leaf(
        &mut self,
        axis: Axis,
        src: Reg,
        src_sel: impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync,
        dest: Reg,
        dest_sel: impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync,
    ) {
        self.composite("LEAFTOLEAF", |net| {
            net.leaf_to_root(axis, src, src_sel);
            net.root_to_leaf(axis, dest, dest_sel);
        });
    }

    /// `COUNT-LEAFTOLEAF(Vector, Dest)` (composite 2).
    pub fn count_to_leaf(
        &mut self,
        axis: Axis,
        flag: Reg,
        dest: Reg,
        dest_sel: impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync,
    ) {
        self.composite("COUNT-LEAFTOLEAF", |net| {
            net.count_to_root(axis, flag);
            net.root_to_leaf(axis, dest, dest_sel);
        });
    }

    /// `SUM-LEAFTOLEAF(Vector, Source, Dest)` (composite 3).
    pub fn sum_to_leaf(
        &mut self,
        axis: Axis,
        src: Reg,
        src_sel: impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync,
        dest: Reg,
        dest_sel: impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync,
    ) {
        self.composite("SUM-LEAFTOLEAF", |net| {
            net.sum_to_root(axis, src, src_sel);
            net.root_to_leaf(axis, dest, dest_sel);
        });
    }

    /// `MIN-LEAFTOLEAF(Vector, Source, Dest)`.
    pub fn min_to_leaf(
        &mut self,
        axis: Axis,
        src: Reg,
        src_sel: impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync,
        dest: Reg,
        dest_sel: impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync,
    ) {
        self.composite("MIN-LEAFTOLEAF", |net| {
            net.min_to_root(axis, src, src_sel);
            net.root_to_leaf(axis, dest, dest_sel);
        });
    }

    /// `MAX-LEAFTOLEAF(Vector, Source, Dest)`.
    pub fn max_to_leaf(
        &mut self,
        axis: Axis,
        src: Reg,
        src_sel: impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync,
        dest: Reg,
        dest_sel: impl Fn(usize, usize, &RegsView<'_>) -> bool + Sync,
    ) {
        self.composite("MAX-LEAFTOLEAF", |net| {
            net.max_to_root(axis, src, src_sel);
            net.root_to_leaf(axis, dest, dest_sel);
        });
    }

    // ------------------------------------------------------------------
    // Local compute phases.
    // ------------------------------------------------------------------

    /// One parallel compute phase: `f(row, col, regs)` runs at every BP;
    /// `cost` is charged once for the whole phase (all BPs in parallel).
    pub fn bp_phase(&mut self, cost: PhaseCost, mut f: impl FnMut(usize, usize, &mut BpRegs<'_>)) {
        for i in 0..self.rows {
            for j in 0..self.cols {
                let mut bp = BpRegs { regs: &mut self.regs, row: i, col: j };
                f(i, j, &mut bp);
            }
        }
        let t = self.phase_cost(cost);
        self.charge_compute("BP-PHASE", t);
    }

    /// One parallel compute phase at the roots of `axis`:
    /// `f(tree_index, root_register)`.
    pub fn root_phase(
        &mut self,
        axis: Axis,
        cost: PhaseCost,
        mut f: impl FnMut(usize, &mut Option<Word>),
    ) {
        let t = self.phase_cost(cost);
        for (t_idx, root) in self.roots_mut(axis).iter_mut().enumerate() {
            f(t_idx, root);
        }
        self.charge_compute("ROOT-PHASE", t);
    }

    /// Sets the root registers of `axis` directly (host-side; free).
    pub fn set_roots(&mut self, axis: Axis, values: Vec<Option<Word>>) {
        assert_eq!(values.len(), self.trees(axis), "one value per tree");
        *self.roots_mut(axis) = values;
    }

    /// The cost of one pipelined pairwise exchange at leaf distance `dist`
    /// (see [`Otn::pairwise`]).
    pub fn pairwise_cost(&self, axis: Axis, dist: usize) -> BitTime {
        let _ = self.leaves(axis);
        // Pairs (l, l+dist) all route through the root of their common
        // 2·dist-leaf subtree; the dist words of each subtree pipeline
        // through that root one word-interval apart.
        self.model.tree_leaf_to_leaf(2 * dist, self.pitch)
            + self.model.pipeline_interval() * (dist as u64 - 1)
    }

    /// `COMPEX`-style pairwise combination (paper §IV): within every tree
    /// of `axis`, leaves `l` and `l + dist` (for `l mod 2·dist < dist`)
    /// exchange their `reg` words through their common subtree and replace
    /// them by `f(tree, l, a, b) → (a', b')`.
    ///
    /// Cost: the `dist` words crossing each `2·dist`-leaf subtree's root
    /// pipeline one word-interval apart behind a `LEAFTOLEAF` latency
    /// ([`Otn::pairwise_cost`]), plus one `extra` local phase — this is the
    /// accounting that makes the full bitonic sort `Θ(√N·polylog)` instead
    /// of `Θ(√N · log² N · log N)` (the geometric distance sum of §IV).
    ///
    /// # Panics
    ///
    /// Panics unless `dist` is a power of two, at least 1, and less than
    /// the tree's leaf count.
    pub fn pairwise(
        &mut self,
        axis: Axis,
        dist: usize,
        reg: Reg,
        extra: PhaseCost,
        mut f: impl FnMut(usize, usize, Option<Word>, Option<Word>) -> (Option<Word>, Option<Word>),
    ) {
        let leaves = self.leaves(axis);
        assert!(dist.is_power_of_two() && dist >= 1, "dist must be a positive power of two");
        assert!(dist < leaves, "dist {dist} must be below the leaf count {leaves}");
        for t in 0..self.trees(axis) {
            for l in 0..leaves {
                if l % (2 * dist) >= dist {
                    continue;
                }
                let (ai, aj) = Self::coords(axis, t, l);
                let (bi, bj) = Self::coords(axis, t, l + dist);
                let a = *self.regs[reg.0].get(ai, aj);
                let b = *self.regs[reg.0].get(bi, bj);
                let (na, nb) = f(t, l, a, b);
                self.regs[reg.0].set(ai, aj, na);
                self.regs[reg.0].set(bi, bj, nb);
            }
        }
        let extra_t = self.phase_cost(extra);
        let cost = self.pairwise_cost(axis, dist) + extra_t;
        // Causally: up and down the 2·dist-leaf subtree, the pipelined
        // spacing of the dist contending words, then the local combine.
        let mut parts = crate::attribution::upward_parts(&self.model, 2 * dist, self.pitch);
        parts.extend(crate::attribution::downward_parts(&self.model, 2 * dist, self.pitch));
        parts.extend(crate::attribution::wait_parts(
            self.model.pipeline_interval() * (dist as u64 - 1),
        ));
        parts.extend(crate::attribution::compute_parts(extra_t));
        self.begin_phase(primitive::spec_for("PAIRWISE").name);
        self.seg_charge(cost, &parts);
        self.end_phase();
        let stats = self.clock.stats_mut();
        stats.sends += 1;
        stats.broadcasts += 1;
        stats.leaf_ops += 1;
    }
}

/// Selector that accepts every BP — the paper's `all`.
pub fn all(_row: usize, _col: usize, _view: &RegsView<'_>) -> bool {
    true
}

/// One tree's downward gather: `(tree, leaf, row, col, value)` per
/// selected leaf (see [`Otn`]'s `tree_downward`).
type DownWrites = Vec<(usize, usize, usize, usize, Option<Word>)>;

#[cfg(test)]
mod tests {
    use super::*;

    fn net4() -> Otn {
        Otn::for_sorting(4).unwrap()
    }

    #[test]
    fn construction_validates_dimensions() {
        assert!(Otn::for_sorting(6).is_err());
        assert!(Otn::new(4, 8, CostModel::thompson(8)).is_ok());
        let n = net4();
        assert_eq!(n.rows(), 4);
        assert_eq!(n.leaves(Axis::Rows), 4);
        assert_eq!(n.trees(Axis::Cols), 4);
    }

    #[test]
    fn broadcast_reaches_selected_leaves_only() {
        let mut n = net4();
        let a = n.alloc_reg("A");
        n.load_row_roots(&[10, 20, 30, 40]);
        n.root_to_leaf(Axis::Rows, a, |_, j, _| j % 2 == 0);
        assert_eq!(n.peek(a, 1, 0), Some(20));
        assert_eq!(n.peek(a, 1, 2), Some(20));
        assert_eq!(n.peek(a, 1, 1), None, "unselected leaf untouched");
        assert_eq!(n.clock().stats().broadcasts, 1);
        assert!(n.clock().now().get() > 0);
    }

    #[test]
    fn leaf_to_root_moves_one_word_per_tree() {
        let mut n = net4();
        let a = n.alloc_reg("A");
        n.load_reg(a, |i, j| Some((10 * i + j) as Word));
        n.leaf_to_root(Axis::Cols, a, |i, j, _| i == j); // diagonal
        assert_eq!(n.roots(Axis::Cols), &[Some(0), Some(11), Some(22), Some(33)]);
    }

    #[test]
    #[should_panic(expected = "contention")]
    fn leaf_to_root_rejects_multiple_sources() {
        let mut n = net4();
        let a = n.alloc_reg("A");
        n.load_reg(a, |_, _| Some(1));
        n.leaf_to_root(Axis::Rows, a, |_, _, _| true);
    }

    #[test]
    fn leaf_to_root_with_empty_selection_yields_null() {
        let mut n = net4();
        let a = n.alloc_reg("A");
        n.leaf_to_root(Axis::Rows, a, |_, _, _| false);
        assert_eq!(n.roots(Axis::Rows), &[None; 4]);
    }

    #[test]
    fn count_counts_nonzero_flags() {
        let mut n = net4();
        let f = n.alloc_reg("flag");
        n.load_reg(f, |i, j| Some(Word::from(i <= j)));
        n.count_to_root(Axis::Rows, f);
        assert_eq!(
            n.roots(Axis::Rows),
            &[Some(4), Some(3), Some(2), Some(1)],
            "row i has 4−i flags set"
        );
        assert_eq!(n.clock().stats().aggregates, 1);
    }

    #[test]
    fn sum_respects_selector_and_nulls() {
        let mut n = net4();
        let a = n.alloc_reg("A");
        n.load_reg(a, |i, j| if j == 3 { None } else { Some((i * 4 + j) as Word) });
        n.sum_to_root(Axis::Rows, a, |_, j, _| j != 0);
        // Row i: (4i+1) + (4i+2) + NULL = 8i+3.
        assert_eq!(n.roots(Axis::Rows), &[Some(3), Some(11), Some(19), Some(27)]);
    }

    #[test]
    fn min_finds_minimum_and_handles_empty() {
        let mut n = net4();
        let a = n.alloc_reg("A");
        n.load_reg(a, |i, j| Some(((i + 1) * 10 - j) as Word));
        n.min_to_root(Axis::Rows, a, all);
        assert_eq!(n.roots(Axis::Rows), &[Some(7), Some(17), Some(27), Some(37)]);
        n.min_to_root(Axis::Cols, a, |_, _, _| false);
        assert_eq!(n.roots(Axis::Cols), &[None; 4]);
    }

    #[test]
    fn leaf_to_leaf_composes() {
        // Move the diagonal of A into every BP of its column (SORT-OTN
        // step 2 shape).
        let mut n = net4();
        let a = n.alloc_reg("A");
        let b = n.alloc_reg("B");
        n.load_reg(a, |i, _| Some(i as Word * 100));
        n.leaf_to_leaf(Axis::Cols, a, |i, j, _| i == j, b, all);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(n.peek(b, i, j), Some(j as Word * 100));
            }
        }
        assert_eq!(n.clock().stats().sends, 1);
        assert_eq!(n.clock().stats().broadcasts, 1);
    }

    #[test]
    fn selector_sees_registers() {
        let mut n = net4();
        let a = n.alloc_reg("A");
        let b = n.alloc_reg("B");
        n.load_reg(a, |i, j| Some((i * 4 + j) as Word));
        n.load_reg(b, |i, j| Some(Word::from(i == 2 && j == 1)));
        n.leaf_to_root(Axis::Rows, a, |i, j, v| v.get(b, i, j) == Some(1));
        assert_eq!(n.roots(Axis::Rows)[2], Some(9));
        assert_eq!(n.roots(Axis::Rows)[0], None);
    }

    #[test]
    fn bp_phase_charges_once_for_all_bps() {
        let mut n = net4();
        let a = n.alloc_reg("A");
        let before = n.clock().now();
        n.bp_phase(PhaseCost::Compare, |i, j, bp| {
            bp.set(a, Some((i + j) as Word));
        });
        let dt = n.clock().now() - before;
        assert_eq!(dt, n.model().compare(), "one compare for the whole phase");
        assert_eq!(n.peek(a, 3, 3), Some(6));
    }

    #[test]
    fn costs_follow_the_model() {
        let mut n = net4();
        let a = n.alloc_reg("A");
        let (leaves, pitch) = (4, n.pitch());
        let model = *n.model();
        let t0 = n.clock().now();
        n.root_to_leaf(Axis::Rows, a, all);
        assert_eq!(n.clock().now() - t0, model.tree_root_to_leaf(leaves, pitch));
        let t1 = n.clock().now();
        n.count_to_root(Axis::Cols, a);
        assert_eq!(n.clock().now() - t1, model.tree_aggregate(leaves, pitch));
    }

    #[test]
    fn rectangular_network_charges_per_axis() {
        let mut n = Otn::new(16, 4, CostModel::thompson(16)).unwrap();
        let a = n.alloc_reg("A");
        let model = *n.model();
        let pitch = n.pitch();
        let (_, t_rows) = n.elapsed(|n| n.root_to_leaf(Axis::Rows, a, all));
        let (_, t_cols) = n.elapsed(|n| n.root_to_leaf(Axis::Cols, a, all));
        assert_eq!(t_rows, model.tree_root_to_leaf(4, pitch), "row trees have 4 leaves");
        assert_eq!(t_cols, model.tree_root_to_leaf(16, pitch), "col trees have 16 leaves");
        assert!(t_cols > t_rows);
    }

    #[test]
    fn max_mirrors_min() {
        let mut n = net4();
        let a = n.alloc_reg("A");
        n.load_reg(a, |i, j| Some(((i + 1) * 10 - j) as Word));
        n.max_to_root(Axis::Rows, a, all);
        assert_eq!(n.roots(Axis::Rows), &[Some(10), Some(20), Some(30), Some(40)]);
        n.max_to_root(Axis::Cols, a, |_, _, _| false);
        assert_eq!(n.roots(Axis::Cols), &[None; 4]);
        // Composite variant broadcasts the maximum back down.
        let b = n.alloc_reg("B");
        n.max_to_leaf(Axis::Cols, a, all, b, all);
        assert_eq!(n.peek(b, 0, 2), Some(38), "column 2 max = 40-2");
    }

    #[test]
    fn axis_flip() {
        assert_eq!(Axis::Rows.flip(), Axis::Cols);
        assert_eq!(Axis::Cols.flip(), Axis::Rows);
    }

    #[test]
    fn root_phase_updates_roots_with_charge() {
        let mut n = net4();
        n.set_roots(Axis::Rows, vec![Some(1), Some(2), None, Some(4)]);
        n.root_phase(Axis::Rows, PhaseCost::Add, |t, r| {
            *r = r.map(|v| v + t as Word);
        });
        assert_eq!(n.roots(Axis::Rows), &[Some(1), Some(3), None, Some(7)]);
        assert!(n.clock().now().get() > 0);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;

    #[test]
    fn one_by_n_network_behaves_like_a_single_tree() {
        let mut net = Otn::new(1, 8, CostModel::thompson(8)).unwrap();
        let a = net.alloc_reg("A");
        net.load_reg(a, |_, j| Some(j as Word));
        net.sum_to_root(Axis::Rows, a, all);
        assert_eq!(net.roots(Axis::Rows), &[Some(28)]);
        // Column trees have a single leaf each: a send is a no-op-ish move.
        net.leaf_to_root(Axis::Cols, a, all);
        let cols: Vec<Option<Word>> = (0..8).map(|j| Some(j as Word)).collect();
        assert_eq!(net.roots(Axis::Cols), cols.as_slice());
    }

    #[test]
    fn n_by_one_network_mirrors_one_by_n() {
        let mut net = Otn::new(8, 1, CostModel::thompson(8)).unwrap();
        let a = net.alloc_reg("A");
        net.load_reg(a, |i, _| Some(i as Word));
        net.min_to_root(Axis::Cols, a, all);
        assert_eq!(net.roots(Axis::Cols), &[Some(0)]);
        net.max_to_root(Axis::Cols, a, all);
        assert_eq!(net.roots(Axis::Cols), &[Some(7)]);
    }

    #[test]
    fn single_cell_network_supports_all_primitives() {
        let mut net = Otn::new(1, 1, CostModel::thompson(2)).unwrap();
        let a = net.alloc_reg("A");
        net.load_reg(a, |_, _| Some(5));
        net.sum_to_root(Axis::Rows, a, all);
        assert_eq!(net.roots(Axis::Rows), &[Some(5)]);
        net.count_to_root(Axis::Cols, a);
        assert_eq!(net.roots(Axis::Cols), &[Some(1)]);
        net.bp_phase(PhaseCost::Bit, |_, _, bp| bp.set(a, Some(9)));
        assert_eq!(net.peek(a, 0, 0), Some(9));
    }

    #[test]
    fn unit_and_scaled_models_compose() {
        // Word-parallel + scaled: every primitive is Θ(log N) with tiny
        // constants; sanity that nothing underflows or zeroes out.
        let model = CostModel::unit_delay(64).with_scaling();
        let mut net = Otn::new(64, 64, model).unwrap();
        let a = net.alloc_reg("A");
        let (_, dt) = net.elapsed(|net| net.root_to_leaf(Axis::Rows, a, all));
        assert!(dt.get() >= 6, "at least one unit per level: {dt}");
        assert!(dt.get() <= 20, "scaled unit broadcast stays small: {dt}");
    }

    #[test]
    fn linear_delay_model_sorts_correctly_but_slowly() {
        let xs: Vec<Word> = (0..16).rev().collect();
        let mut lin = Otn::new(16, 16, CostModel::linear_delay(16)).unwrap();
        let slow = super::sort::sort(&mut lin, &xs).unwrap();
        assert_eq!(slow.sorted, (0..16).collect::<Vec<Word>>());
        let mut log = Otn::for_sorting(16).unwrap();
        let fast = super::sort::sort(&mut log, &xs).unwrap();
        assert!(slow.time > fast.time * 2, "{} !>> {}", slow.time, fast.time);
    }

    #[test]
    fn pairwise_cost_grows_with_distance() {
        let net = Otn::for_sorting(64).unwrap();
        let c1 = net.pairwise_cost(Axis::Rows, 1);
        let c8 = net.pairwise_cost(Axis::Rows, 8);
        let c32 = net.pairwise_cost(Axis::Rows, 32);
        assert!(c1 < c8 && c8 < c32);
    }
}
