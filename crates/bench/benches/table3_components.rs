//! Table III bench: connected components (and MST) on the OTN, the OTC
//! emulation, and the mesh, plus the simulated table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orthotrees::otc;
use orthotrees::otn::graph::{cc, mst};
use orthotrees_analysis::workloads;
use orthotrees_baselines::mesh;
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_components");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &n in &[16usize, 64] {
        let adj = workloads::gnp_adjacency(n, (2.0 / n as f64).min(0.5), 1);
        let rows = workloads::grid_to_rows(&adj);
        let weights = workloads::random_weights(n, (4.0 / n as f64).min(0.5), 500, 2);

        group.bench_with_input(BenchmarkId::new("otn_cc", n), &n, |b, _| {
            b.iter(|| black_box(cc::connected_components(&adj).unwrap().time));
        });
        group.bench_with_input(BenchmarkId::new("mesh_cc", n), &n, |b, _| {
            b.iter(|| black_box(mesh::closure::connected_components(&rows).unwrap().time));
        });
        group.bench_with_input(BenchmarkId::new("otc_cc", n), &n, |b, _| {
            b.iter(|| black_box(otc::cc::connected_components(&adj).unwrap().time));
        });
        group.bench_with_input(BenchmarkId::new("otn_mst", n), &n, |b, _| {
            b.iter(|| black_box(mst::minimum_spanning_tree(&weights).unwrap().time));
        });
        group.bench_with_input(BenchmarkId::new("otc_mst", n), &n, |b, _| {
            b.iter(|| black_box(otc::mst::minimum_spanning_tree(&weights).unwrap().time));
        });
    }
    group.finish();

    let cfg = orthotrees_analysis::report::ReportConfig {
        graph_ns: vec![8, 16, 32, 64],
        ..Default::default()
    };
    println!("\n{}", orthotrees_analysis::report::table3(&cfg).render());
    println!("{}", orthotrees_analysis::report::table3_mst(&cfg).render());
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
