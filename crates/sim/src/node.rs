//! Nodes: the active elements of the bit-level simulation.
//!
//! A node is a processor (BP or IP) or any other clocked element. It reacts
//! to arriving bits by emitting bits on its output ports; the engine routes
//! emissions over [`Link`](crate::Link)s with model-priced delays.

use orthotrees_obs::json::Json;
use orthotrees_vlsi::{BitTime, SimError};

/// Identifies a node within an [`Engine`](crate::Engine).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Identifies one of a node's output ports.
///
/// Ports are small dense integers assigned by the experiment builder (e.g.
/// for a tree IP: port 0 = parent, ports 1–2 = children).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

/// One bit on a wire, tagged with its index within the word it belongs to.
///
/// The index lets bit-serial arithmetic nodes (adders, comparators) know
/// which position of the operand has arrived without any out-of-band
/// signalling — exactly the convention of LSB-first (SUM) and MSB-first
/// (MIN) transmission the paper describes in §VII.D.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Bit {
    /// The bit value.
    pub value: bool,
    /// Position of this bit within its word (0 = first transmitted).
    pub index: u32,
}

/// Bits a node wants to emit, collected during one activation.
///
/// Each entry is `(port, bit, hold)` where `hold` is an extra local delay
/// before the bit enters the port's wire (e.g. one gate delay of a serial
/// adder stage).
#[derive(Debug, Default)]
pub struct Outbox {
    pub(crate) emissions: Vec<(PortId, Bit, BitTime)>,
}

impl Outbox {
    /// Emits `bit` on `port` immediately.
    pub fn send(&mut self, port: PortId, bit: Bit) {
        self.emissions.push((port, bit, BitTime::ZERO));
    }

    /// Emits `bit` on `port` after an extra local delay `hold` (gate delays
    /// inside the node, e.g. the full-adder latch of a SUM IP).
    pub fn send_after(&mut self, port: PortId, bit: Bit, hold: BitTime) {
        self.emissions.push((port, bit, hold));
    }

    /// Number of queued emissions.
    pub fn len(&self) -> usize {
        self.emissions.len()
    }

    /// Whether nothing has been queued.
    pub fn is_empty(&self) -> bool {
        self.emissions.is_empty()
    }
}

/// Behaviour of a node: how it reacts to the start of simulation and to
/// arriving bits.
pub trait NodeBehavior {
    /// Called once at time zero; sources emit their words here.
    fn on_start(&mut self, _out: &mut Outbox) {}

    /// Called when a bit arrives on input port `port` at time `now`.
    fn on_bit(&mut self, now: BitTime, port: PortId, bit: Bit, out: &mut Outbox);

    /// Completion probe: a sink reports when it has received a full word.
    /// The engine records the latest completion time over all nodes.
    fn completed_at(&self) -> Option<BitTime> {
        None
    }

    /// Result probe: a sink that assembles a word reports its value, so
    /// experiments can verify functional correctness (e.g. a bit-serial SUM
    /// tree really computed the sum).
    fn result(&self) -> Option<u64> {
        None
    }

    /// Serializes the node's *mutable* run state for a checkpoint.
    ///
    /// The default returns [`Json::Null`], which is correct for stateless
    /// nodes (repeaters, sources that emit everything in
    /// [`on_start`](NodeBehavior::on_start)). Stateful nodes — anything
    /// with accumulators, buffers or completion latches — must override
    /// both this and [`load_state`](NodeBehavior::load_state), or a
    /// restored run diverges from the uninterrupted one (the CKPT-001
    /// verify rule catches exactly that).
    fn save_state(&self) -> Json {
        Json::Null
    }

    /// Restores the node's mutable run state from a checkpoint previously
    /// produced by [`save_state`](NodeBehavior::save_state).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SnapshotFormat`] if `state` is not something
    /// this node type could have saved. The default accepts only
    /// [`Json::Null`] (the stateless encoding).
    fn load_state(&mut self, state: &Json) -> Result<(), SimError> {
        match state {
            Json::Null => Ok(()),
            other => Err(SimError::SnapshotFormat {
                detail: format!("stateless node handed saved state {}", other.render()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects_emissions_in_order() {
        let mut out = Outbox::default();
        assert!(out.is_empty());
        out.send(PortId(0), Bit { value: true, index: 0 });
        out.send_after(PortId(1), Bit { value: false, index: 1 }, BitTime::new(2));
        assert_eq!(out.len(), 2);
        assert_eq!(out.emissions[0].0, PortId(0));
        assert_eq!(out.emissions[1].2, BitTime::new(2));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(NodeId(1));
        s.insert(NodeId(1));
        s.insert(NodeId(2));
        assert_eq!(s.len(), 2);
        assert!(NodeId(1) < NodeId(2));
        assert!(PortId(0) < PortId(3));
    }
}
