//! Registry ↔ observability coverage: every span name the [`Recorder`]
//! sees while the full primitive repertoire runs must be an entry of
//! [`orthotrees::primitive::REGISTRY`] for that network, and every
//! registry entry claiming the network must actually be seen. Either
//! direction failing means a layer drifted from the descriptor table —
//! a renamed span, a primitive added without a registry entry, or a
//! registry entry nothing implements.

use std::collections::BTreeSet;

use orthotrees::obs::Recorder;
use orthotrees::otc::{self, Otc};
use orthotrees::otn::{self, prefix, Axis, Otn, PhaseCost};
use orthotrees::primitive::{self, Network};
use orthotrees::{FaultPlan, Word};
use orthotrees_sim::experiments;

/// Every distinct span name a recorder saw (phases aggregate by name).
fn span_names(rec: &Recorder) -> BTreeSet<String> {
    rec.phase_totals().iter().map(|p| p.name.clone()).collect()
}

/// Registry names claiming membership in a network.
fn registry_names(on: impl Fn(Network) -> bool) -> BTreeSet<String> {
    primitive::REGISTRY.iter().filter(|s| on(s.network)).map(|s| s.name.to_string()).collect()
}

/// A plan whose every word transit faults detectably, so one retry round
/// is charged and the `FAULT-OVERHEAD` span must appear.
fn always_faulting() -> FaultPlan {
    FaultPlan::new(9).with_word_fault_rate(1.0).with_undetectable_fraction(0.0).with_max_retries(1)
}

/// Runs every §II.B primitive, every composite, the compute phases and
/// the SCAN/ROUTE/SORT-OTN procedures on one recorded net, then a faulty
/// broadcast for the overhead span; returns all span names seen.
fn otn_sweep() -> BTreeSet<String> {
    let n = 16;
    let mut net = Otn::for_sorting(n).unwrap();
    net.install_recorder(Recorder::new());
    let a = net.alloc_reg("A");
    let b = net.alloc_reg("B");
    net.load_reg(a, |i, j| Some((i * n + j) as Word));
    net.load_row_roots(&vec![7; n]);

    net.root_to_leaf(Axis::Rows, b, otn::all);
    net.leaf_to_root(Axis::Rows, a, |_, j, _| j == 0);
    net.count_to_root(Axis::Rows, a);
    net.sum_to_root(Axis::Rows, a, otn::all);
    net.min_to_root(Axis::Rows, a, otn::all);
    net.max_to_root(Axis::Rows, a, otn::all);
    net.leaf_to_leaf(Axis::Rows, a, |_, j, _| j == 0, b, otn::all);
    net.count_to_leaf(Axis::Rows, a, b, otn::all);
    net.sum_to_leaf(Axis::Rows, a, |_, j, _| j == 0, b, otn::all);
    net.min_to_leaf(Axis::Rows, a, |_, j, _| j == 0, b, otn::all);
    net.max_to_leaf(Axis::Rows, a, |_, j, _| j == 0, b, otn::all);
    net.pairwise(Axis::Rows, 1, a, PhaseCost::Bit, |_, _, x, y| (y, x));
    net.bp_phase(PhaseCost::Bit, |_, _, _| {});
    net.root_phase(Axis::Rows, PhaseCost::Bit, |_, _| {});

    let xs: Vec<Word> = (0..n as Word).rev().collect();
    otn::sort::sort(&mut net, &xs).unwrap();
    net.prefix_sum_rows(a, b);
    let keep: Vec<bool> = (0..n).map(|j| j % 2 == 0).collect();
    prefix::compact_on(&mut net, &xs, &keep).unwrap();

    // Last, a degraded broadcast so the retry round charges its span.
    net.install_fault_plan(always_faulting());
    net.root_to_leaf(Axis::Rows, b, otn::all);

    span_names(&net.take_recorder().unwrap())
}

/// The OTC counterpart: every §V.B stream primitive, the composites, the
/// compute phases, SORT-OTC and a degraded stream for `FAULT-OVERHEAD`.
fn otc_sweep() -> BTreeSet<String> {
    let mut net = Otc::for_sorting(16).unwrap();
    net.install_recorder(Recorder::new());
    let a = net.alloc_reg("A");
    let b = net.alloc_reg("B");
    net.load_reg(a, |i, j, q| Some((i + 4 * j + 16 * q) as Word));
    net.load_row_root_buffers(&vec![vec![3; net.cycle_len()]; net.side()]);

    net.circulate(&[a]);
    net.root_to_cycle(Axis::Rows, b, |_, _, _| true);
    net.cycle_to_root(Axis::Rows, a, |_, j, _, _| j == 0);
    net.sum_cycle_to_root(Axis::Rows, a, |_, _, _, _| true);
    net.min_cycle_to_root(Axis::Rows, a, |_, _, _, _| true);
    net.cycle_to_cycle(Axis::Rows, a, |_, j, _, _| j == 0, b, |_, _, _| true);
    net.sum_cycle_to_cycle(Axis::Rows, a, |_, _, _, _| true, b, |_, _, _| true);
    net.min_cycle_to_cycle(Axis::Rows, a, |_, _, _, _| true, b, |_, _, _| true);
    net.bp_phase(PhaseCost::Bit, |_, _, _, _| None);
    net.cycle_phase(PhaseCost::Bit, |_, _, _| {});

    let xs: Vec<Word> = (0..16).rev().collect();
    otc::sort::sort(&mut net, &xs).unwrap();

    net.install_fault_plan(always_faulting());
    net.root_to_cycle(Axis::Rows, b, |_, _, _| true);

    span_names(&net.take_recorder().unwrap())
}

#[test]
fn otn_spans_and_registry_entries_coincide() {
    let seen = otn_sweep();
    let expected = registry_names(Network::on_otn);
    let unregistered: Vec<&String> = seen.difference(&expected).collect();
    assert!(
        unregistered.is_empty(),
        "spans recorded on the OTN with no registry entry claiming Network::Otn: {unregistered:?}"
    );
    let unexercised: Vec<&String> = expected.difference(&seen).collect();
    assert!(
        unexercised.is_empty(),
        "registry entries claiming Network::Otn that no primitive recorded: {unexercised:?}"
    );
}

#[test]
fn otc_spans_and_registry_entries_coincide() {
    let seen = otc_sweep();
    let expected = registry_names(Network::on_otc);
    let unregistered: Vec<&String> = seen.difference(&expected).collect();
    assert!(
        unregistered.is_empty(),
        "spans recorded on the OTC with no registry entry claiming Network::Otc: {unregistered:?}"
    );
    let unexercised: Vec<&String> = expected.difference(&seen).collect();
    assert!(
        unexercised.is_empty(),
        "registry entries claiming Network::Otc that no primitive recorded: {unexercised:?}"
    );
}

#[test]
fn experiment_metrics_name_registry_primitives() {
    for &(metric, prim) in experiments::PAPER_PRIMITIVES {
        assert!(
            primitive::lookup(prim).is_some(),
            "experiment metric {metric:?} cites {prim:?}, which is not a registry entry"
        );
    }
}

#[test]
fn every_span_seen_is_network_appropriate() {
    for name in otn_sweep() {
        let spec = primitive::lookup(&name).unwrap();
        assert!(spec.network.on_otn(), "{name} recorded on the OTN but registered for OTC only");
    }
    for name in otc_sweep() {
        let spec = primitive::lookup(&name).unwrap();
        assert!(spec.network.on_otc(), "{name} recorded on the OTC but registered for OTN only");
    }
}
