//! Chaos soak harness for checkpoint/restore and supervised recovery.
//!
//! Three layers of guarantees:
//!
//! 1. **Engine snapshots** — a checkpoint taken at *any* event boundary,
//!    round-tripped through its on-disk JSON text and restored into a
//!    freshly built engine, resumes into a run that is bit-, clock- and
//!    stats-identical to the uninterrupted one — with and without fault
//!    plans, under FIFO and LIFO tie-breaking.
//! 2. **Word-level snapshots** — OTN/OTC networks checkpointed between
//!    problems restore to bit-identical registers, clock and fault
//!    cursor across 2²..2⁷ leaves.
//! 3. **Supervised recovery** — a long multi-problem run laced with
//!    outages and word faults completes under the recovery supervisor,
//!    matching the recoverable baseline, within a bounded attempt budget.

use orthotrees::obs::json::Json;
use orthotrees::otc::{self, Otc};
use orthotrees::otn::{self, checkpoint::OtnSnapshot, Otn};
use orthotrees::{BitTime, FaultPlan, SimError};
use orthotrees_sim::{
    supervise_engine, supervise_steps, Bit, Engine, NodeBehavior, NodeId, Outbox, PortId,
    RecoveryPolicy, Snapshot,
};
use orthotrees_verify::determinism::{self, check_commutes, fan_in, or_sink};
use orthotrees_vlsi::DelayModel;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Harness nodes.
// ---------------------------------------------------------------------

/// Emits one word LSB-first starting at time zero (mirrors the verify
/// crate's source; stateless, so the default snapshot hooks suffice).
struct Source {
    value: u64,
    width: u32,
}
impl NodeBehavior for Source {
    fn on_start(&mut self, out: &mut Outbox) {
        for i in 0..self.width {
            out.send_after(
                PortId(0),
                Bit { value: (self.value >> i) & 1 == 1, index: i },
                BitTime::new(u64::from(i)),
            );
        }
    }
    fn on_bit(&mut self, _: BitTime, _: PortId, _: Bit, _: &mut Outbox) {}
}

/// ORs arriving bits and reports completion only once `need` bits have
/// arrived — so an outage that swallows deliveries leaves the run
/// quiescent-but-incomplete, which is exactly what the supervisor treats
/// as a failure.
struct CountedSink {
    need: u64,
    got: u64,
    acc: u64,
    done: Option<BitTime>,
}
impl NodeBehavior for CountedSink {
    fn on_bit(&mut self, now: BitTime, _: PortId, bit: Bit, _: &mut Outbox) {
        self.got += 1;
        if bit.value {
            self.acc |= 1 << bit.index;
        }
        if self.got >= self.need {
            self.done = Some(self.done.map_or(now, |d| d.max(now)));
        }
    }
    fn completed_at(&self) -> Option<BitTime> {
        self.done
    }
    fn result(&self) -> Option<u64> {
        Some(self.acc)
    }
    fn save_state(&self) -> Json {
        Json::obj([
            ("got", Json::u64(self.got)),
            ("acc", Json::str(format!("{:x}", self.acc))),
            ("done", self.done.map_or(Json::Null, |t| Json::u64(t.get()))),
        ])
    }
    fn load_state(&mut self, state: &Json) -> Result<(), SimError> {
        let field = |key: &str| {
            state.get(key).ok_or_else(|| SimError::SnapshotFormat {
                detail: format!("CountedSink state missing `{key}`"),
            })
        };
        self.got = field("got")?.as_u64().unwrap_or(0);
        self.acc =
            field("acc")?.as_str().and_then(|s| u64::from_str_radix(s, 16).ok()).unwrap_or(0);
        self.done = match field("done")? {
            Json::Null => None,
            t => t.as_u64().map(BitTime::new),
        };
        Ok(())
    }
}

/// `sources` word-emitters fanned into one counted sink (node 0).
fn counted_fan_in(model: DelayModel, sources: u32, width: u32) -> Engine {
    let mut e = Engine::new(model).with_event_log();
    let sink = e.add_node(Box::new(CountedSink {
        need: u64::from(sources) * u64::from(width),
        got: 0,
        acc: 0,
        done: None,
    }));
    for i in 0..sources {
        let src = e.add_node(Box::new(Source { value: 0x5a ^ u64::from(i), width }));
        e.connect(src, PortId(0), sink, PortId(i as usize), 8);
    }
    e
}

fn results(e: &Engine) -> Vec<Option<u64>> {
    (0..e.node_count()).map(|i| e.node(NodeId(i)).result()).collect()
}

// ---------------------------------------------------------------------
// 1. Engine snapshots: restore at any boundary, through JSON text.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_snapshot_round_trips_at_any_boundary(
        cut in 0u64..48,
        sources in 2u32..6,
        model_ix in 0usize..3,
        with_plan in any::<bool>(),
        fault_seed in 0u64..1000,
    ) {
        let model = [DelayModel::Constant, DelayModel::Logarithmic, DelayModel::Linear][model_ix];
        let fault_seed = with_plan.then_some(fault_seed);
        let build = || {
            let e = counted_fan_in(model, sources, 8);
            match fault_seed {
                Some(seed) => e.with_fault_plan(FaultPlan::new(seed).with_link_fault_rate(0.1)),
                None => e,
            }
        };
        let mut baseline = build();
        let t_base = baseline.try_run().unwrap();

        let mut part = build();
        part.try_run_for(cut).unwrap();
        let text = part.snapshot().render();
        let snap = Snapshot::parse(&text).unwrap();
        prop_assert_eq!(snap.render(), text);

        let mut resumed = build();
        resumed.restore(&snap).unwrap();
        let t_res = resumed.try_run().unwrap();

        prop_assert_eq!(t_res, t_base);
        prop_assert_eq!(resumed.delivered_events(), baseline.delivered_events());
        prop_assert_eq!(results(&resumed), results(&baseline));
        prop_assert_eq!(resumed.log(), baseline.log());
        prop_assert_eq!(resumed.fault_stats(), baseline.fault_stats());
        prop_assert_eq!(resumed.completion_time(), baseline.completion_time());
    }
}

#[test]
fn run_checkpointed_snapshots_all_resume_identically() {
    let mut baseline = counted_fan_in(DelayModel::Logarithmic, 3, 8);
    let t_base = baseline.try_run().unwrap();
    let mut chk = counted_fan_in(DelayModel::Logarithmic, 3, 8);
    let (_, snaps) = chk.run_checkpointed(5, u64::MAX).unwrap();
    assert!(!snaps.is_empty(), "cadence 5 must produce checkpoints");
    for snap in &snaps {
        let mut resumed = counted_fan_in(DelayModel::Logarithmic, 3, 8);
        resumed.restore(snap).unwrap();
        assert_eq!(resumed.try_run().unwrap(), t_base);
        assert_eq!(results(&resumed), results(&baseline));
    }
}

/// The engine's LIFO tie-break verification knob composes with snapshots:
/// a checkpoint/restore cycle mid-run must not introduce any DET-001
/// divergence between FIFO and LIFO runs.
#[test]
fn lifo_ties_compose_with_snapshot_restore() {
    for model in [DelayModel::Constant, DelayModel::Logarithmic, DelayModel::Linear] {
        let findings = check_commutes("fan-in with mid-run checkpoint", |lifo| {
            let mut e = fan_in(model, 3, 8, Box::new(or_sink()), lifo);
            e.try_run_for(7).unwrap();
            let snap = Snapshot::parse(&e.snapshot().render()).unwrap();
            let mut resumed = fan_in(model, 3, 8, Box::new(or_sink()), lifo);
            resumed.restore(&snap).unwrap();
            resumed
        });
        assert!(findings.is_empty(), "{findings:?}");
    }
}

#[test]
fn restore_across_delay_models_is_a_typed_error() {
    let mut e = counted_fan_in(DelayModel::Constant, 2, 8);
    e.try_run_for(4).unwrap();
    let snap = e.snapshot();
    let mut wrong = counted_fan_in(DelayModel::Linear, 2, 8);
    match wrong.restore(&snap) {
        Err(SimError::SnapshotMismatch { what: "delay model", .. }) => {}
        other => panic!("expected delay-model mismatch, got {other:?}"),
    }
    let mut smaller = counted_fan_in(DelayModel::Constant, 3, 8);
    match smaller.restore(&snap) {
        Err(SimError::SnapshotMismatch { what, .. }) => {
            assert!(what.contains("node") || what.contains("link"), "got {what}");
        }
        other => panic!("expected shape mismatch, got {other:?}"),
    }
}

#[test]
fn lifo_engines_snapshot_their_tie_break_mode() {
    let mut e = fan_in(DelayModel::Logarithmic, 3, 8, Box::new(or_sink()), true);
    e.try_run_for(5).unwrap();
    let snap = e.snapshot();
    let mut fifo = fan_in(DelayModel::Logarithmic, 3, 8, Box::new(or_sink()), false);
    match fifo.restore(&snap) {
        Err(SimError::SnapshotMismatch { what: "tie-break mode", .. }) => {}
        other => panic!("expected tie-break mismatch, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// 2. Word-level snapshots: OTN and OTC between problems.
// ---------------------------------------------------------------------

/// Sizes swept: 2²..2⁷ leaves.
const WORD_NS: [usize; 6] = [4, 8, 16, 32, 64, 128];

fn problem(n: usize, salt: i64) -> Vec<i64> {
    (0..n as i64).map(|v| (v * 37 + salt) % n as i64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn otn_snapshot_between_problems_is_bit_identical(
        salt in 0i64..1000,
        with_plan in any::<bool>(),
        fault_seed in 0u64..1000,
    ) {
        let fault_seed = with_plan.then_some(fault_seed);
        for &n in &WORD_NS {
            let plan = fault_seed.map(|s| FaultPlan::new(s).with_word_fault_rate(0.02));

            // Reference: two problems back to back, checkpoint in between.
            let mut a = Otn::for_sorting(n).unwrap();
            if let Some(p) = plan.clone() {
                a.install_fault_plan(p);
            }
            let _ = otn::sort::sort(&mut a, &problem(n, salt)).unwrap();
            let text = a.checkpoint_text();
            let out_a = otn::sort::sort(&mut a, &problem(n, salt + 1)).unwrap();

            // Replica: diverge (different first problem), then restore the
            // checkpoint from its JSON text and replay the second problem.
            let mut b = Otn::for_sorting(n).unwrap();
            if let Some(p) = plan.clone() {
                b.install_fault_plan(p);
            }
            let _ = otn::sort::sort(&mut b, &problem(n, salt + 7)).unwrap();
            let snap = OtnSnapshot::parse(&text).unwrap();
            b.restore(&snap).unwrap();
            let out_b = otn::sort::sort(&mut b, &problem(n, salt + 1)).unwrap();

            prop_assert_eq!(&out_a.sorted, &out_b.sorted);
            prop_assert_eq!(&out_a.missing, &out_b.missing);
            prop_assert_eq!(out_a.time, out_b.time);
            prop_assert_eq!(a.clock(), b.clock());
            prop_assert_eq!(a.fault_stats(), b.fault_stats());
            prop_assert_eq!(a.checkpoint_text(), b.checkpoint_text());
        }
    }

    #[test]
    fn otc_snapshot_between_problems_is_bit_identical(
        salt in 0i64..1000,
        with_plan in any::<bool>(),
        fault_seed in 0u64..1000,
    ) {
        let fault_seed = with_plan.then_some(fault_seed);
        for &n in &WORD_NS {
            let plan = fault_seed.map(|s| FaultPlan::new(s).with_word_fault_rate(0.02));

            let mut a = Otc::for_sorting(n).unwrap();
            if let Some(p) = plan.clone() {
                a.install_fault_plan(p);
            }
            let _ = otc::sort::sort(&mut a, &problem(n, salt)).unwrap();
            let text = a.checkpoint_text();
            let out_a = otc::sort::sort(&mut a, &problem(n, salt + 1)).unwrap();

            let mut b = Otc::for_sorting(n).unwrap();
            if let Some(p) = plan.clone() {
                b.install_fault_plan(p);
            }
            let _ = otc::sort::sort(&mut b, &problem(n, salt + 7)).unwrap();
            let snap = otc::checkpoint::OtcSnapshot::parse(&text).unwrap();
            b.restore(&snap).unwrap();
            let out_b = otc::sort::sort(&mut b, &problem(n, salt + 1)).unwrap();

            prop_assert_eq!(&out_a.sorted, &out_b.sorted);
            prop_assert_eq!(out_a.time, out_b.time);
            prop_assert_eq!(a.clock(), b.clock());
            prop_assert_eq!(a.checkpoint_text(), b.checkpoint_text());
        }
    }
}

// ---------------------------------------------------------------------
// 3. Supervised recovery: chaos soak.
// ---------------------------------------------------------------------

/// An outage swallows mid-run deliveries; the supervisor must roll back
/// (escalating past any checkpoint poisoned by mid-outage state), let the
/// heal hook clear the fault, and finish with exactly the clean run's
/// completion time and results.
#[test]
fn supervisor_recovers_engine_outage_to_clean_baseline() {
    let mut clean = counted_fan_in(DelayModel::Logarithmic, 4, 8);
    let t_clean = clean.try_run().unwrap();

    let mut chaotic = counted_fan_in(DelayModel::Logarithmic, 4, 8).with_fault_plan(
        FaultPlan::new(9).with_outage(NodeId(0), BitTime::new(6), BitTime::new(30)),
    );
    let policy =
        RecoveryPolicy { max_attempts: 12, checkpoint_events: 6, min_checkpoint_events: 2 };
    let report = supervise_engine(&mut chaotic, &policy, |e, _failures| {
        e.set_fault_plan(None);
    })
    .expect("recovers within the attempt budget");

    assert!(report.rollbacks >= 1, "the outage must actually trip the supervisor");
    assert_eq!(report.attempts, report.rollbacks + 1);
    assert_eq!(report.completion, t_clean, "recovered run is clock-identical to clean");
    assert_eq!(results(&chaotic), results(&clean));
    assert!(report.replayed_events > 0);
    assert!(report.overhead_pct() > 0.0);
}

#[test]
fn supervisor_gives_up_when_nothing_heals() {
    let mut chaotic = counted_fan_in(DelayModel::Constant, 2, 8).with_fault_plan(
        FaultPlan::new(1).with_outage(NodeId(0), BitTime::ZERO, BitTime::new(1_000_000)),
    );
    let policy = RecoveryPolicy::attempts(3);
    let err = supervise_engine(&mut chaotic, &policy, |_, _| {}).unwrap_err();
    assert!(matches!(err, SimError::NoCompletion { .. }), "got {err:?}");
}

/// Long pipelined multi-problem soak at the word level: every problem of
/// the batch must come out sorted despite erasure-laden fault draws, by
/// retrying failed problems from the inter-problem checkpoint with a
/// bumped fault epoch.
#[test]
fn supervised_multi_problem_soak_matches_recoverable_baseline() {
    let n = 16;
    let problems: Vec<Vec<i64>> = (0..12).map(|k| problem(n, 13 * k)).collect();
    let expected: Vec<Vec<i64>> = problems
        .iter()
        .map(|xs| {
            let mut s = xs.clone();
            s.sort_unstable();
            s
        })
        .collect();

    let mut net = Otn::for_sorting(n).unwrap();
    net.install_fault_plan(FaultPlan::new(77).with_word_fault_rate(0.004));
    // Warm-up problem so the register layout exists before checkpointing.
    let _ = otn::sort::sort(&mut net, &problem(n, 1)).unwrap();

    let mut outputs: Vec<Vec<i64>> = Vec::new();
    let policy = RecoveryPolicy::attempts(8);
    let report = supervise_steps(
        &mut net,
        problems.len(),
        &policy,
        Otn::snapshot,
        |net, snap: &OtnSnapshot| net.restore(snap),
        |net| net.clock().now(),
        |net, index, attempt| {
            if attempt > 0 {
                // Fresh deterministic draws: restore rolled the epoch
                // cursor back to the checkpoint's, so the bump must be
                // re-applied once per attempt or every retry replays the
                // same faults forever.
                for _ in 0..attempt {
                    net.bump_fault_epoch();
                }
                outputs.truncate(index);
            }
            let out = otn::sort::sort(net, &problems[index]).map_err(SimError::Model)?;
            if !out.missing.is_empty() {
                return Err(SimError::NoCompletion { what: "all sorted outputs" });
            }
            outputs.push(out.sorted);
            Ok(())
        },
    )
    .expect("soak recovers within the attempt budget");

    assert_eq!(outputs, expected, "every problem sorted despite injected faults");
    assert_eq!(report.completion, net.clock().now());
    assert!(
        report.rollbacks >= 1,
        "soak plan too gentle: no failure was injected (stats: {:?})",
        net.fault_stats()
    );
}

/// The CI-pinned bounded soak: n = 128 word sources fanned into one
/// counted sink under an *outage-dense* plan — the sink goes dark over
/// four staggered windows covering most of the run, and the heal hook
/// clears only one window per failure, so the supervisor has to roll
/// back repeatedly before the replay comes out clean. Everything is
/// fixed (seed, windows, budget): the step either recovers within the
/// attempt budget with the clean run's exact completion time and
/// results, or CI fails.
///
/// `#[ignore]`d so `cargo test` stays fast; ci.sh runs it explicitly in
/// release mode as its own gate step.
#[test]
#[ignore = "bounded CI soak; ci.sh runs it explicitly"]
fn ci_bounded_soak_n128_outage_dense_recovers() {
    const N: u32 = 128;
    let mut clean = counted_fan_in(DelayModel::Logarithmic, N, 8);
    let t_clean = clean.try_run().unwrap();

    // Four outage windows striped across the clean run's horizon.
    let horizon = t_clean.get();
    let windows: Vec<(BitTime, BitTime)> = (0..4)
        .map(|k| {
            let from = 1 + k * horizon / 5;
            (BitTime::new(from), BitTime::new(from + horizon / 4))
        })
        .collect();
    let plan_with = |windows: &[(BitTime, BitTime)]| {
        let mut plan = FaultPlan::new(0x50AC);
        for &(from, until) in windows {
            plan = plan.with_outage(NodeId(0), from, until);
        }
        plan
    };

    let mut chaotic =
        counted_fan_in(DelayModel::Logarithmic, N, 8).with_fault_plan(plan_with(&windows));
    // The first window opens at t = 1, so every mid-run checkpoint is
    // poisoned and the escalating rollback must drain all the way to the
    // pristine pre-start checkpoint (≤ KEPT_CHECKPOINTS stuck attempts)
    // on top of the one heal step per window — hence the roomier budget.
    let policy =
        RecoveryPolicy { max_attempts: 16, checkpoint_events: 64, min_checkpoint_events: 8 };
    let report = supervise_engine(&mut chaotic, &policy, |e, failures| {
        // Heal one window per failure: the supervisor must survive the
        // remaining outages until the plan is actually empty.
        let remaining = &windows[(failures as usize).min(windows.len())..];
        e.set_fault_plan(if remaining.is_empty() { None } else { Some(plan_with(remaining)) });
    })
    .expect("outage-dense soak recovers within the attempt budget");

    assert!(report.rollbacks >= windows.len() as u32, "every window must trip a rollback");
    assert_eq!(report.attempts, report.rollbacks + 1);
    assert!(report.attempts <= policy.max_attempts, "stays inside the CI budget");
    assert_eq!(report.completion, t_clean, "recovered run is clock-identical to clean");
    assert_eq!(results(&chaotic), results(&clean));
    assert!(report.replayed_events > 0);
}

/// The determinism pass's stock networks stay clean when every run is
/// interrupted and resumed — belt and braces over the CKPT-001 netlint
/// rule, from inside the test suite.
#[test]
fn stock_ckpt_findings_are_clean() {
    let findings = determinism::stock_findings();
    assert!(findings.is_empty(), "{findings:?}");
    let findings = orthotrees_verify::ckpt::stock_findings();
    assert!(findings.is_empty(), "{findings:?}");
}
