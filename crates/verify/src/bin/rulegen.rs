//! `rulegen` — render the committed `RULES.md` catalogue from the
//! in-code rule registry.
//!
//! ```text
//! cargo run -p orthotrees-verify --bin rulegen > RULES.md
//! ```
//!
//! CI regenerates the catalogue and diffs it against the committed file,
//! so the markdown can never drift from [`orthotrees_verify::diag::RULES`].

fn main() {
    print!("{}", orthotrees_verify::diag::rules_markdown());
}
