//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no access to crates.io, so the
//! small deterministic subset of `rand`'s API that the tests and workload
//! generators use is reimplemented here: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] extension methods
//! `random` / `random_range` / `random_bool`.
//!
//! The generator is SplitMix64 — statistically fine for test workloads and,
//! crucially, *stable across platforms and releases*, which is all the
//! workspace requires ("same seed yields the same inputs on every run").

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 bits from the generator.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            split_mix(self.state)
        }
    }

    /// One SplitMix64 output step for an already-advanced state.
    pub(crate) fn split_mix(z: u64) -> u64 {
        let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly from the generator's full stream.
pub trait Random {
    /// Draws one value.
    fn random(rng: &mut dyn RngCore) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

/// Ranges a uniform value can be drawn from (half-open and inclusive
/// integer ranges, and half-open `f64` ranges).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// The convenience drawing methods (`rand`'s modern `Rng` surface).
pub trait RngExt: RngCore + Sized {
    /// Draws a value of type `T` from its natural distribution
    /// (`f64` uniform in `[0, 1)`, `bool` fair coin).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-100i64..100);
            assert!((-100..100).contains(&v));
            let w: usize = rng.random_range(0usize..=8);
            assert!(w <= 8);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
