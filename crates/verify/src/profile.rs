//! Profiler invariant checker: do the windows tell the truth?
//!
//! The windowed [`Profiler`] is only trustworthy as an event-core
//! baseline if its time-resolved view loses nothing relative to the
//! [`Recorder`]'s aggregate bookkeeping. Two rules police that:
//!
//! - **PROF-001** — the windowed sums tile the aggregate totals. At
//!   engine level, Σ per-window events must equal the recorder's
//!   calendar-depth sample count, Σ link bits the recorder's per-link
//!   bits, and Σ queue-wait the recorder's entrance waits. At word
//!   level, Σ(wire + queue + compute) over windows must equal
//!   [`Recorder::segments_total`] — and the completion time, since the
//!   causal segments themselves tile the clock.
//! - **PROF-002** — the window sequence is gapless and monotone:
//!   consecutive indices from 0, positive width. A profiler filled
//!   through the engine hooks holds this by construction; a rebuilt one
//!   ([`Profiler::from_windows`], e.g. from a parsed profile document)
//!   may not — which is exactly what the rule exists to catch.
//!
//! [`stock_findings`] sweeps both rules over profiled bit-level
//! broadcasts and word-level OTN/OTC sorts (clean and under a dense
//! fault plan); `netlint --all` runs it in CI. The mutation tests below
//! prove each rule fires on a deliberately corrupted window sequence.

use crate::diag::Finding;
use orthotrees::obs::profile::Profiler;
use orthotrees::obs::Recorder;
use orthotrees::otc::{self, Otc};
use orthotrees::otn::{self, Otn};
use orthotrees::FaultPlan;
use orthotrees_sim::experiments;
use orthotrees_vlsi::{BitTime, CostModel};

/// Checks PROF-002 on a profiler: window indices must be consecutive
/// from 0 and the effective width positive.
pub fn check_windows(network: &str, prof: &Profiler) -> Vec<Finding> {
    let mut out = Vec::new();
    if prof.width() == 0 {
        out.push(Finding::new(
            "PROF-002",
            network,
            "width".to_string(),
            "window width is 0".to_string(),
            "construct profilers with a positive window width",
        ));
    }
    for (i, w) in prof.windows().iter().enumerate() {
        if w.index != i as u64 {
            out.push(Finding::new(
                "PROF-002",
                network,
                format!("window position {i}"),
                format!("index {} at position {i} (sequence must be gapless from 0)", w.index),
                "fill windows through the profiler's hooks, which gap-fill by construction",
            ));
            break;
        }
    }
    out
}

/// Checks PROF-001 for an engine-filled profiler against the recorder
/// that instrumented the same run: per-window sums must tile the
/// recorder's aggregate event, link-traffic and queue-wait totals.
pub fn check_engine_tiling(network: &str, prof: &Profiler, rec: &Recorder) -> Vec<Finding> {
    let mut out = Vec::new();
    let t = prof.totals();
    let pairs = [
        ("events", t.events, rec.calendar_depth().count()),
        ("link bits", t.link_bits, rec.links().iter().map(|l| l.bits).sum::<u64>()),
        ("queue-wait τ", t.queue_wait, rec.links().iter().map(|l| l.wait_total).sum::<u64>()),
    ];
    for (what, windowed, aggregate) in pairs {
        if windowed != aggregate {
            out.push(Finding::new(
                "PROF-001",
                network,
                what.to_string(),
                format!("Σ windows = {windowed} but the recorder aggregates {aggregate}"),
                "every engine hook must land in exactly one window",
            ));
        }
    }
    out
}

/// Checks PROF-001 for a word-level profiler rebuilt from a recorded
/// run's causal segments: Σ(wire + queue + compute) over windows must
/// equal the recorder's segment total, which itself tiles the
/// completion time.
pub fn check_word_tiling(
    network: &str,
    prof: &Profiler,
    rec: &Recorder,
    completion: BitTime,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let t = prof.totals();
    let windowed = t.wire + t.queue_wait + t.compute;
    let segments = rec.segments_total().get();
    if windowed != segments {
        out.push(Finding::new(
            "PROF-001",
            network,
            "segment τ".to_string(),
            format!("Σ windows = {windowed} τ but the segments total {segments} τ"),
            "split every segment exactly across window boundaries",
        ));
    }
    if segments != completion.get() {
        out.push(Finding::new(
            "PROF-001",
            network,
            "completion".to_string(),
            format!("segments total {segments} τ but the run completed at {completion} τ"),
            "the causal segments must tile the clock before windowing can",
        ));
    }
    out
}

/// Deterministic distinct sorting inputs for the stock word-level runs
/// (a bijective scramble of `0..n`, so no workload-crate dependency).
fn scrambled_words(n: usize) -> Vec<i64> {
    (0..n as i64).map(|i| (i * 37) ^ 0x15).collect()
}

/// The dense word-fault plan of the faulty stock rows — heavy enough
/// that retry overhead is guaranteed to appear in the windows.
fn dense_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).with_word_fault_rate(0.3).with_max_retries(2)
}

fn word_stock(network: &str, n: usize, faulty: bool, out: &mut Vec<Finding>) {
    let xs = scrambled_words(n);
    let (time, rec) = if network == "OTN" {
        let mut net = match Otn::for_sorting(n) {
            Ok(net) => net,
            Err(_) => return,
        };
        net.install_recorder(Recorder::new());
        if faulty {
            net.install_fault_plan(dense_plan(7));
        }
        match otn::sort::sort(&mut net, &xs) {
            Ok(o) => (o.time, net.take_recorder().expect("recorder installed")),
            Err(_) => return,
        }
    } else {
        let mut net = match Otc::for_sorting(n) {
            Ok(net) => net,
            Err(_) => return,
        };
        net.install_recorder(Recorder::new());
        if faulty {
            net.install_fault_plan(dense_plan(7));
        }
        match otc::sort::sort(&mut net, &xs) {
            Ok(o) => (o.time, net.take_recorder().expect("recorder installed")),
            Err(_) => return,
        }
    };
    let prof = Profiler::from_recorder(&rec, Profiler::auto_width(time.get()));
    let fault = if faulty { ", dense faults" } else { "" };
    let name = format!("SORT-{network}[{n}]{fault}");
    out.extend(check_windows(&name, &prof));
    out.extend(check_word_tiling(&name, &prof, &rec, time));
}

/// The stock profiler checks `netlint` runs: profiled bit-level
/// broadcasts at a sweep of sizes, and word-level OTN/OTC sorts (clean
/// and under the dense fault plan) — every one must window gaplessly
/// (PROF-002) and tile its recorder's aggregates (PROF-001).
pub fn stock_findings() -> Vec<Finding> {
    let mut out = Vec::new();
    for leaves in [4usize, 16, 64] {
        let m = CostModel::thompson(leaves);
        let name = format!("ROOTTOLEAF[{leaves}]");
        match experiments::broadcast_profiled(leaves, &m) {
            Ok((_, rec, prof)) => {
                out.extend(check_windows(&name, &prof));
                out.extend(check_engine_tiling(&name, &prof, &rec));
            }
            Err(e) => out.push(Finding::new(
                "PROF-001",
                &name,
                "run".to_string(),
                format!("profiled broadcast failed: {e}"),
                "fix the bit-level model before checking the profiler",
            )),
        }
    }
    for n in [16usize, 64] {
        for faulty in [false, true] {
            word_stock("OTN", n, faulty, &mut out);
            word_stock("OTC", n, faulty, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthotrees::obs::profile::Window;

    #[test]
    fn stock_profiles_are_clean() {
        let f = stock_findings();
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn a_window_gap_is_prof002() {
        // A rebuilt sequence that skips index 1: the verbatim constructor
        // keeps the gap, and the rule must see it.
        let w0 = Window { index: 0, events: 1, ..Window::default() };
        let w2 = Window { index: 2, events: 1, ..Window::default() };
        let prof = Profiler::from_windows(8, vec![w0, w2]);
        let f = check_windows("fixture", &prof);
        assert!(f.iter().any(|f| f.rule == "PROF-002"), "{f:?}");
    }

    #[test]
    fn dropped_engine_counts_are_prof001() {
        let m = CostModel::thompson(16);
        let (_, rec, prof) = experiments::broadcast_profiled(16, &m).unwrap();
        assert!(check_engine_tiling("clean", &prof, &rec).is_empty());

        // Tamper: drop one window's events and bits, keeping the shape
        // valid — only the tiling rule can notice.
        let mut windows = prof.windows().to_vec();
        let busy =
            windows.iter().position(|w| w.events > 0 && w.link_bits > 0).expect("active window");
        windows[busy].events -= 1;
        windows[busy].link_bits -= 1;
        let tampered = Profiler::from_windows(prof.width(), windows);
        assert!(check_windows("tampered", &tampered).is_empty(), "shape still valid");
        let f = check_engine_tiling("tampered", &tampered, &rec);
        assert!(f.iter().any(|f| f.rule == "PROF-001"), "{f:?}");
        assert!(f.iter().any(|f| f.subject == "events"), "{f:?}");
    }

    #[test]
    fn dropped_word_tau_is_prof001() {
        let xs = scrambled_words(16);
        let mut net = Otn::for_sorting(16).unwrap();
        net.install_recorder(Recorder::new());
        let out = otn::sort::sort(&mut net, &xs).unwrap();
        let rec = net.take_recorder().unwrap();
        let prof = Profiler::from_recorder(&rec, Profiler::auto_width(out.time.get()));
        assert!(check_word_tiling("clean", &prof, &rec, out.time).is_empty());

        let mut windows = prof.windows().to_vec();
        let busy = windows.iter().position(|w| w.wire > 0).expect("active window");
        windows[busy].wire -= 1;
        let tampered = Profiler::from_windows(prof.width(), windows);
        let f = check_word_tiling("tampered", &tampered, &rec, out.time);
        assert!(f.iter().any(|f| f.rule == "PROF-001" && f.subject == "segment τ"), "{f:?}");
    }

    #[test]
    fn zero_width_is_rejected_shapewise() {
        // `Profiler::new`/`from_windows` clamp to ≥ 1, so a live zero
        // width is unreachable — the check still guards parsed documents.
        let prof = Profiler::from_windows(0, Vec::new());
        assert!(check_windows("fixture", &prof).is_empty(), "clamped to 1");
        assert_eq!(prof.width(), 1);
    }
}
