//! The full experiment battery: builds every reproduced table and the
//! derived checks (AT² rankings, crossovers, the §V OTC-equals-OTN-time
//! validation), and renders the text that EXPERIMENTS.md records and the
//! `repro` binary prints.

use crate::sweep;
use crate::tables::{paper, ReproTable};
use orthotrees_vlsi::Complexity;
use std::fmt::Write as _;

/// Sweep grids and seed for one report run.
#[derive(Clone, Debug)]
pub struct ReportConfig {
    /// Problem sizes for the sorting tables (I and IV).
    pub sort_ns: Vec<usize>,
    /// Matrix sides for Table II.
    pub matmul_ns: Vec<usize>,
    /// Vertex counts for Table III.
    pub graph_ns: Vec<usize>,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ReportConfig {
    /// A laptop-scale grid: large enough for stable exponent fits, small
    /// enough to run in seconds.
    fn default() -> Self {
        ReportConfig {
            sort_ns: vec![16, 32, 64, 128, 256, 512],
            matmul_ns: vec![2, 4, 8, 16, 32],
            graph_ns: vec![8, 16, 32, 64, 128, 256],
            seed: 0x07EE5,
        }
    }
}

/// Table I: sorting under the logarithmic-delay model, all five networks
/// measured.
pub fn table1(cfg: &ReportConfig) -> ReproTable {
    let ns = &cfg.sort_ns;
    let sweeps = vec![
        sweep::sort_mesh(ns, cfg.seed, false),
        sweep::sort_psn(ns, cfg.seed, false),
        sweep::sort_ccc(ns, cfg.seed, false),
        sweep::sort_otn(ns, cfg.seed, false),
        sweep::sort_otc(ns, cfg.seed),
    ];
    ReproTable::build("Table I", "sorting, logarithmic-delay model", paper::table1(), sweeps)
}

/// Table II: Boolean matrix multiplication. Mesh/OTN/OTC measured (OTC
/// emulated per §V); PSN/CCC evaluated from the paper's closed forms (their
/// `N³`-processor constructions are cited, not built — see DESIGN.md).
pub fn table2(cfg: &ReportConfig) -> ReproTable {
    let ns = &cfg.matmul_ns;
    let sweeps = vec![
        sweep::boolmm_mesh(ns, cfg.seed),
        sweep::analytic(
            "PSN",
            "boolean matmul",
            Complexity::new(6.0, -1),
            Complexity::polylog(2),
            ns,
        ),
        sweep::analytic(
            "CCC",
            "boolean matmul",
            Complexity::new(6.0, -2),
            Complexity::polylog(2),
            ns,
        ),
        sweep::boolmm_otn(ns, cfg.seed),
        sweep::boolmm_otc(ns, cfg.seed),
        sweep::matmul_mot3d(ns, cfg.seed),
    ];
    ReproTable::build("Table II", "Boolean matrix multiplication", paper::table2(), sweeps)
}

/// Table III: connected components. Mesh (GKT timing), OTN and the direct
/// OTC implementation all measured; PSN/CCC analytic.
pub fn table3(cfg: &ReportConfig) -> ReproTable {
    let ns = &cfg.graph_ns;
    let sweeps = vec![
        sweep::cc_mesh(ns, cfg.seed),
        sweep::analytic(
            "PSN",
            "connected components",
            Complexity::new(4.0, -4),
            Complexity::polylog(4),
            ns,
        ),
        sweep::analytic(
            "CCC",
            "connected components",
            Complexity::new(4.0, -4),
            Complexity::polylog(4),
            ns,
        ),
        sweep::cc_otn(ns, cfg.seed),
        sweep::cc_otc(ns, cfg.seed),
    ];
    ReproTable::build("Table III", "connected components", paper::table3(), sweeps)
}

/// The MST companion of Table III (§III.B/§VI.B prose).
pub fn table3_mst(cfg: &ReportConfig) -> ReproTable {
    let ns = &cfg.graph_ns;
    let sweeps = vec![sweep::mst_otn(ns, cfg.seed), sweep::mst_otc(ns, cfg.seed)];
    ReproTable::build(
        "Table III′",
        "minimum spanning tree (paper §III.B / §VI.B prose)",
        paper::table3_mst(),
        sweeps,
    )
}

/// Table IV: sorting under the unit-cost constant-delay model.
pub fn table4(cfg: &ReportConfig) -> ReproTable {
    let ns = &cfg.sort_ns;
    let sweeps = vec![
        sweep::sort_mesh(ns, cfg.seed, true),
        sweep::sort_psn(ns, cfg.seed, true),
        sweep::sort_ccc(ns, cfg.seed, true),
        sweep::sort_otn(ns, cfg.seed, true),
    ];
    ReproTable::build(
        "Table IV",
        "sorting, constant-delay (unit-cost) model",
        paper::table4(),
        sweeps,
    )
}

/// Checks whether the measured AT² ranking matches the paper's asymptotic
/// ranking, restricted to the networks present in both, and reports the
/// comparison as text.
pub fn ranking_check(table: &ReproTable) -> String {
    let paper_rank = table.paper_ranking();
    let measured = table.measured_ranking();
    let measured_names: Vec<&str> = measured.iter().map(|(n, _)| n.as_str()).collect();
    let paper_filtered: Vec<&str> =
        paper_rank.iter().copied().filter(|n| measured_names.contains(n)).collect();
    let verdict = if paper_filtered == measured_names {
        "MATCH"
    } else {
        "DIFFERS (finite-size constants; see crossover analysis)"
    };
    format!(
        "{}: paper AT² order {:?}; measured at largest n {:?} → {}\n",
        table.id, paper_filtered, measured_names, verdict
    )
}

/// The paper's headline crossover claims, evaluated from the Θ forms:
/// where the OTC starts beating each rival, per problem.
pub fn crossover_report() -> String {
    let mut out = String::new();
    let limit = 1u64 << 62;
    let cases: [(&str, Complexity, &str, Complexity); 3] = [
        (
            "OTC vs Mesh, connected components",
            Complexity::new(2.0, 8),
            "Mesh",
            Complexity::poly(4.0),
        ),
        (
            "OTC vs PSN/CCC, connected components",
            Complexity::new(2.0, 8),
            "PSN/CCC",
            Complexity::new(4.0, 4),
        ),
        ("OTC vs CCC, Boolean matmul", Complexity::new(4.0, 2), "CCC", Complexity::new(6.0, 2)),
    ];
    for (name, otc, rival, other) in cases {
        match otc.crossover_below(&other, limit) {
            Some(n) => {
                let _ = writeln!(
                    out,
                    "{name}: OTC ({otc}) overtakes {rival} ({other}) at N = {n} \
                     (OTC {:.3e} vs {:.3e})",
                    otc.eval(n),
                    other.eval(n)
                );
            }
            None => {
                let _ = writeln!(out, "{name}: no crossover below 2^62");
            }
        }
    }
    out
}

/// Runs the whole battery and renders the report.
pub fn full_report(cfg: &ReportConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "orthotrees reproduction report (seed {}, sort N {:?}, matmul N {:?}, graph N {:?})\n",
        cfg.seed, cfg.sort_ns, cfg.matmul_ns, cfg.graph_ns
    );
    for table in [table1(cfg), table2(cfg), table3(cfg), table3_mst(cfg), table4(cfg)] {
        out.push_str(&table.render());
        out.push_str(&ranking_check(&table));
        out.push('\n');
    }
    out.push_str("Crossovers (from the paper's Θ forms):\n");
    out.push_str(&crossover_report());
    out.push('\n');
    // Phase/utilization profile at a fixed moderate size (the breakdown
    // shape is size-independent; 128 keeps the report fast).
    let obs_n = cfg.sort_ns.iter().copied().filter(|&n| n <= 128).max().unwrap_or(16);
    out.push_str(&crate::obsreport::observability_report(obs_n, cfg.seed));
    out.push('\n');
    out.push_str(&crate::critpath::critpath_report(obs_n, cfg.seed));
    out.push('\n');
    out.push_str(&crate::profreport::profile_report(obs_n, cfg.seed));
    out.push('\n');
    out.push_str(&crate::recovery::recovery_report_section(cfg.seed));
    out.push('\n');
    out.push_str(&crate::telreport::telemetry_report_section(cfg.seed));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ReportConfig {
        ReportConfig {
            sort_ns: vec![16, 64, 256],
            matmul_ns: vec![2, 4, 8],
            graph_ns: vec![8, 16, 32],
            seed: 42,
        }
    }

    #[test]
    fn table1_measured_ranking_matches_paper_at_moderate_n() {
        // The Table I ordering is Mesh < {PSN, CCC, OTC} < OTN; at the
        // measured sizes the headline comparison OTC-beats-OTN must hold.
        let t = table1(&tiny());
        let measured = t.measured_ranking();
        let pos = |name: &str| measured.iter().position(|(n, _)| n == name).unwrap();
        assert!(pos("OTC") < pos("OTN"), "ranking: {measured:?}");
    }

    #[test]
    fn table3_otc_beats_the_quadratic_rivals() {
        let t = table3(&tiny());
        let measured = t.measured_ranking();
        let pos = |name: &str| measured.iter().position(|(n, _)| n == name).unwrap();
        assert!(pos("OTC") < pos("OTN"), "{measured:?}");
    }

    #[test]
    fn table4_otn_is_fastest_in_time() {
        // §VII.D: OTN sorts in Θ(log N) under the unit-cost model — the
        // fastest of the four.
        let t = table4(&tiny());
        let times: Vec<(String, u64)> = t
            .rows
            .iter()
            .filter_map(|r| {
                let s = r.sweep.as_ref()?.last()?;
                Some((r.paper.network.to_string(), s.time.get()))
            })
            .collect();
        let otn = times.iter().find(|(n, _)| n == "OTN").unwrap().1;
        for (name, time) in &times {
            if name != "OTN" && name != "Mesh" {
                assert!(otn <= *time, "OTN {otn} vs {name} {time}");
            }
        }
    }

    #[test]
    fn ranking_check_mentions_verdict() {
        let t = table1(&tiny());
        let text = ranking_check(&t);
        assert!(text.contains("Table I"));
        assert!(text.contains("MATCH") || text.contains("DIFFERS"));
    }

    #[test]
    fn crossover_report_finds_the_cc_crossover() {
        let text = crossover_report();
        assert!(text.contains("overtakes Mesh"), "{text}");
        assert!(text.contains("overtakes PSN/CCC"), "{text}");
    }

    #[test]
    fn full_report_contains_all_tables() {
        let text = full_report(&tiny());
        for id in ["Table I", "Table II", "Table III", "Table III′", "Table IV"] {
            assert!(text.contains(id), "missing {id}");
        }
        assert!(text.contains("Crossovers"));
        assert!(text.contains("Crash recovery"), "recovery section missing");
    }
}
