//! `SORT-OTN` — rank sorting in `Θ(log² N)` (paper §II.B).
//!
//! The procedure, verbatim from the paper:
//!
//! ```text
//! Procedure SORT-OTN
//!   for each i (0 ≤ i < N) pardo begin
//!     1) ROOTTOLEAF (row(i), dest = (all, A));
//!     2) LEAFTOLEAF (column(i), source = (i, A), dest = (all, B));
//!     3) for each j (0 ≤ j < N) pardo
//!          flag(i,j) := if A(i,j) > B(i,j) then 1 else 0;
//!     4) COUNT-LEAFTOLEAF (row(i), dest = (all, R));
//!     5) LEAFTOROOT (column(i), source = (j : R(j,i) = i, A))
//!   end
//! ```
//!
//! After steps 1–2 each BP `(i,j)` holds `x(i)` in `A` and `x(j)` in `B`;
//! step 3 compares all pairs; step 4 counts each element's rank; step 5
//! routes the rank-`i` element to output port `i`. With duplicates, step 3
//! uses the index tie-break the paper gives:
//! `A > B or (A = B and i > j)`.

use super::{all, Axis, Otn, PhaseCost};
use crate::word::Word;
use orthotrees_vlsi::{BitTime, ModelError, OpStats};

/// The result of a sorting run: the sorted data plus the simulated cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SortOutcome {
    /// The `N` inputs in ascending order, as read from the output ports.
    ///
    /// Under an installed fault plan, an output port that received no word
    /// (erased transmission, dark leaf, or a rank collision from corrupted
    /// comparisons) contributes `0` here and its position is listed in
    /// [`SortOutcome::missing`].
    pub sorted: Vec<Word>,
    /// Output positions that received no word. Always empty fault-free.
    pub missing: Vec<usize>,
    /// Simulated time of the sort proper (input loading excluded, as in the
    /// paper: "the numbers are initially available at the input ports").
    pub time: BitTime,
    /// Primitive-operation counts for the run.
    pub stats: OpStats,
}

/// Sorts `xs` on the `(N×N)`-OTN `net` (`N = xs.len()` must equal the
/// network side). Duplicates are allowed.
///
/// # Errors
///
/// Returns [`ModelError`] if `xs.len()` differs from the network side or the
/// network is not square.
///
/// # Example
///
/// ```
/// use orthotrees::otn::{sort, Otn};
/// let mut net = Otn::for_sorting(4)?;
/// let out = sort::sort(&mut net, &[3, 1, 2, 3])?;
/// assert_eq!(out.sorted, vec![1, 2, 3, 3]);
/// # Ok::<(), orthotrees::ModelError>(())
/// ```
pub fn sort(net: &mut Otn, xs: &[Word]) -> Result<SortOutcome, ModelError> {
    ModelError::require_equal("sort input length vs network side", net.rows(), xs.len())?;
    ModelError::require_equal("square network", net.rows(), net.cols())?;

    let a = net.alloc_reg("A");
    let b = net.alloc_reg("B");
    let flag = net.alloc_reg("flag");
    let r = net.alloc_reg("R");

    net.load_row_roots(xs);
    let stats_before = *net.clock().stats();
    let (_, time) = net.elapsed(|net| {
        net.begin_phase(crate::primitive::spec_for("SORT-OTN").name);
        // 1) every BP of row i learns x(i).
        net.root_to_leaf(Axis::Rows, a, all);
        // 2) via column tree i, the diagonal BP's A (= x(i)) reaches every
        //    BP of column i: B(i,j) = x(j).
        net.leaf_to_leaf(Axis::Cols, a, |i, j, _| i == j, b, all);
        // 3) all N² comparisons in one parallel word-compare.
        net.bp_phase(PhaseCost::Compare, |i, j, bp| {
            let f = match (bp.get(a), bp.get(b)) {
                (Some(x), Some(y)) => x > y || (x == y && i > j),
                _ => false,
            };
            bp.set(flag, Some(Word::from(f)));
        });
        // 4) rank of x(i) at every BP of row i.
        net.count_to_leaf(Axis::Rows, flag, r, all);
        // 5) column tree i extracts the element of rank i.
        net.leaf_to_root(Axis::Cols, a, |i, j, v| v.get(r, i, j) == Some(j as Word));
        net.end_phase();
    });

    let degraded = net.has_fault_plan();
    let mut missing = Vec::new();
    let sorted = net
        .read_col_roots()
        .into_iter()
        .enumerate()
        .map(|(p, v)| match v {
            Some(w) => w,
            None if degraded => {
                missing.push(p);
                0
            }
            // Invariant (fault-free): the COUNT ranks are a permutation of
            // 0..N, so every output port receives exactly one word.
            None => panic!("rank invariant violated: output port {p} received no word"),
        })
        .collect();
    let stats = net.clock().stats().since(&stats_before);
    Ok(SortOutcome { sorted, missing, time, stats })
}

/// Result of a selection run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectOutcome {
    /// The element of rank `k` (0-based, ascending).
    pub value: Word,
    /// Simulated time — one tree phase *less* than a full sort (the final
    /// extraction selects a single rank instead of all of them, but the
    /// rank computation is identical, so selection is the same Θ(log² N)).
    pub time: BitTime,
}

/// Selects the `k`-th smallest of `xs` (0-based) with the rank-computation
/// phases of SORT-OTN: steps 1–4 compute every element's rank; step 5
/// extracts just rank `k` through one column tree.
///
/// # Errors
///
/// Returns [`ModelError`] if `xs.len()` differs from the network side, the
/// network is not square, or `k ≥ xs.len()`.
pub fn select_kth(net: &mut Otn, xs: &[Word], k: usize) -> Result<SelectOutcome, ModelError> {
    ModelError::require_equal("select input length vs network side", net.rows(), xs.len())?;
    ModelError::require_equal("square network", net.rows(), net.cols())?;
    ModelError::require_at_least("rank bound (k < N)", xs.len(), k + 1)?;

    let a = net.alloc_reg("A");
    let b = net.alloc_reg("B");
    let flag = net.alloc_reg("flag");
    let r = net.alloc_reg("R");
    net.load_row_roots(xs);
    let (_, time) = net.elapsed(|net| {
        net.root_to_leaf(Axis::Rows, a, all);
        net.leaf_to_leaf(Axis::Cols, a, |i, j, _| i == j, b, all);
        net.bp_phase(PhaseCost::Compare, |i, j, bp| {
            let f = match (bp.get(a), bp.get(b)) {
                (Some(x), Some(y)) => x > y || (x == y && i > j),
                _ => false,
            };
            bp.set(flag, Some(Word::from(f)));
        });
        net.count_to_leaf(Axis::Rows, flag, r, all);
        // Column tree 0 extracts the rank-k element (the copy in column 0).
        net.leaf_to_root(Axis::Cols, a, move |i, j, v| j == 0 && v.get(r, i, 0) == Some(k as Word));
    });
    // Invariant (fault-free): ranks are a permutation of 0..N and k < N,
    // so exactly one BP of column 0 holds rank k.
    let value =
        net.roots(Axis::Cols)[0].expect("rank invariant violated: no BP of column 0 holds rank k");
    Ok(SelectOutcome { value, time })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(xs: &[Word]) -> SortOutcome {
        let mut net = Otn::for_sorting(xs.len()).unwrap();
        sort(&mut net, xs).unwrap()
    }

    #[test]
    fn sorts_distinct_values() {
        let out = run(&[5, 3, 8, 1]);
        assert_eq!(out.sorted, vec![1, 3, 5, 8]);
    }

    #[test]
    fn sorts_with_duplicates() {
        let out = run(&[7, 7, 1, 7, 2, 2, 7, 7]);
        assert_eq!(out.sorted, vec![1, 2, 2, 7, 7, 7, 7, 7]);
    }

    #[test]
    fn sorts_all_equal_and_reverse_inputs() {
        assert_eq!(run(&[4, 4, 4, 4]).sorted, vec![4, 4, 4, 4]);
        let rev: Vec<Word> = (0..16).rev().collect();
        assert_eq!(run(&rev).sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn sorts_negative_values() {
        let out = run(&[0, -5, 3, -1]);
        assert_eq!(out.sorted, vec![-5, -1, 0, 3]);
    }

    #[test]
    fn uses_exactly_the_papers_operation_mix() {
        // Steps: 1 broadcast + (send+broadcast) + compare + (count+broadcast)
        // + send = 3 broadcasts, 2 sends, 1 aggregate, 1 leaf phase.
        let out = run(&[2, 1, 4, 3]);
        assert_eq!(out.stats.broadcasts, 3);
        assert_eq!(out.stats.sends, 2);
        assert_eq!(out.stats.aggregates, 1);
        assert_eq!(out.stats.leaf_ops, 1);
    }

    #[test]
    fn time_is_theta_log_squared() {
        // T(N)/log²N bounded in a constant band over the sweep.
        let mut ratios = Vec::new();
        for k in [3u32, 5, 7, 9] {
            let n = 1usize << k;
            let xs: Vec<Word> = (0..n as Word).map(|v| (v * 37) % n as Word).collect();
            let out = run(&xs);
            ratios.push(out.time.as_f64() / (k as f64 * k as f64));
        }
        let lo = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ratios.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi / lo < 3.0, "sort time not Θ(log²N): {ratios:?}");
    }

    #[test]
    fn rejects_mismatched_input_length() {
        let mut net = Otn::for_sorting(4).unwrap();
        assert!(sort(&mut net, &[1, 2, 3]).is_err());
    }

    #[test]
    fn rejects_rectangular_network() {
        let mut net = Otn::new(4, 8, crate::CostModel::thompson(8)).unwrap();
        assert!(sort(&mut net, &[1, 2, 3, 4]).is_err());
    }

    #[test]
    fn select_kth_matches_sorted_order() {
        let xs: Vec<Word> = vec![9, 1, 7, 3, 5, 5, 2, 8];
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        for (k, &expected) in sorted.iter().enumerate() {
            let mut net = Otn::for_sorting(xs.len()).unwrap();
            let out = select_kth(&mut net, &xs, k).unwrap();
            assert_eq!(out.value, expected, "k={k}");
        }
    }

    #[test]
    fn select_median_of_random_inputs() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for n in [16usize, 64] {
            let xs: Vec<Word> = (0..n).map(|_| rng.random_range(-100..100)).collect();
            let mut net = Otn::for_sorting(n).unwrap();
            let out = select_kth(&mut net, &xs, n / 2).unwrap();
            let mut sorted = xs.clone();
            sorted.sort_unstable();
            assert_eq!(out.value, sorted[n / 2], "n={n}");
        }
    }

    #[test]
    fn select_is_no_slower_than_sort() {
        let xs: Vec<Word> = (0..64).rev().collect();
        let mut net1 = Otn::for_sorting(64).unwrap();
        let sel = select_kth(&mut net1, &xs, 10).unwrap();
        let mut net2 = Otn::for_sorting(64).unwrap();
        let full = sort(&mut net2, &xs).unwrap();
        assert!(sel.time <= full.time);
    }

    #[test]
    fn select_rejects_out_of_range_rank() {
        let mut net = Otn::for_sorting(4).unwrap();
        assert!(select_kth(&mut net, &[1, 2, 3, 4], 4).is_err());
    }

    #[test]
    fn constant_delay_model_is_faster() {
        let xs: Vec<Word> = (0..64).rev().collect();
        let mut log_net = Otn::for_sorting(64).unwrap();
        let t_log = sort(&mut log_net, &xs).unwrap().time;
        let mut const_net = Otn::new(64, 64, crate::CostModel::constant_delay(64)).unwrap();
        let t_const = sort(&mut const_net, &xs).unwrap().time;
        assert!(t_const < t_log, "§VII.D: constant-delay model is faster");
    }
}
