//! Pipeline-SLO experiment: drives `otn::pipeline` with many independent
//! sorting problems through one network and reports *service-level*
//! throughput and latency figures from the streaming telemetry bus —
//! sustained problems/Mτ plus the p50/p90/p99 of per-problem completion
//! time, read from the in-house quantile sketch rather than a buffered
//! list of samples.
//!
//! The exact per-problem completion times are kept alongside the sketch:
//! the `TEL-001` verify rule recomputes the exact quantiles from them and
//! holds every reported sketch quantile inside the sketch's ε rank band.
//! [`PipelineSlo::telemetry`] also carries the full bus, so callers can
//! export the run as OpenMetrics text or an `orthotrees-telemetry/v1`
//! document (the bench report harness writes both to `target/report/`).

use crate::workloads;
use orthotrees::obs::telemetry::{Telemetry, REPORTED_QUANTILES};
use orthotrees::otn::pipeline::pipelined_sorts;
use orthotrees::otn::Otn;
use orthotrees_vlsi::{BitTime, ModelError};

/// Throughput/latency figures for one pipelined batch, plus the telemetry
/// bus that metered it.
#[derive(Clone, Debug)]
pub struct PipelineSlo {
    /// Problem size (network side).
    pub n: usize,
    /// Number of pipelined problems in the batch.
    pub problems: usize,
    /// Single-problem latency through the three-phase pipeline.
    pub single_latency: BitTime,
    /// Interval between successive completions.
    pub issue_interval: BitTime,
    /// Batch makespan under the §VIII schedule.
    pub makespan: BitTime,
    /// Sketch-reported completion-time quantiles `[p50, p90, p99]` in τ.
    pub quantiles: [u64; 3],
    /// Exact per-problem completion times, submission order — what the
    /// `TEL-001` rule recomputes quantiles from.
    pub completions: Vec<u64>,
    /// The telemetry bus the batch was recorded into (counters,
    /// `pipeline.completion_tau` sketch, periodic snapshots).
    pub telemetry: Telemetry,
}

impl PipelineSlo {
    /// Sustained throughput in problems per 10⁶ τ (problems over the
    /// batch makespan).
    pub fn problems_per_mtau(&self) -> f64 {
        if self.makespan == BitTime::ZERO {
            return 0.0;
        }
        self.problems as f64 / self.makespan.as_f64() * 1e6
    }
}

/// Runs `problems` seeded sorting problems of size `n` through one OTN
/// pipeline, metering the batch into a fresh [`Telemetry`] bus (snapshot
/// interval = the issue interval, so every completion lands in its own
/// snapshot window).
///
/// Deterministic: the same `(n, problems, seed)` triple produces the
/// same outputs, completion times and sketch state on every run.
///
/// # Errors
///
/// Returns [`ModelError`] if `problems == 0` or `n` is not a power of
/// two that the sorting network accepts.
pub fn pipeline_telemetry(n: usize, problems: usize, seed: u64) -> Result<PipelineSlo, ModelError> {
    let net = Otn::for_sorting(n)?;
    let inputs: Vec<Vec<_>> =
        (0..problems).map(|k| workloads::distinct_words(n, seed.wrapping_add(k as u64))).collect();
    let out = pipelined_sorts(&net, &inputs)?;

    let mut tel = Telemetry::new(out.issue_interval.get().max(1));
    out.record_telemetry(&mut tel);
    let sk = tel.sketch("pipeline.completion_tau").expect("record_telemetry fed the sketch");
    let quantiles = [
        sk.quantile(REPORTED_QUANTILES[0].1).unwrap_or(0),
        sk.quantile(REPORTED_QUANTILES[1].1).unwrap_or(0),
        sk.quantile(REPORTED_QUANTILES[2].1).unwrap_or(0),
    ];
    let completions = out.completion_times().iter().map(|t| t.get()).collect();

    Ok(PipelineSlo {
        n,
        problems,
        single_latency: out.single_latency,
        issue_interval: out.issue_interval,
        makespan: out.makespan,
        quantiles,
        completions,
        telemetry: tel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_quantiles_are_ordered_and_bounded_by_the_makespan() {
        let slo = pipeline_telemetry(16, 40, 42).unwrap();
        let [p50, p90, p99] = slo.quantiles;
        assert!(p50 <= p90 && p90 <= p99, "{:?}", slo.quantiles);
        assert!(p50 >= slo.single_latency.get());
        assert!(p99 <= slo.makespan.get());
        assert_eq!(slo.completions.len(), 40);
        assert!(slo.problems_per_mtau() > 0.0);
    }

    #[test]
    fn slo_run_is_deterministic() {
        let a = pipeline_telemetry(16, 24, 7).unwrap();
        let b = pipeline_telemetry(16, 24, 7).unwrap();
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.quantiles, b.quantiles);
        assert_eq!(a.telemetry.to_json().render(), b.telemetry.to_json().render());
    }

    #[test]
    fn exact_completions_bracket_the_sketch_quantiles() {
        use orthotrees::obs::telemetry::within_rank_band;
        let slo = pipeline_telemetry(32, 64, 3).unwrap();
        let mut sorted = slo.completions.clone();
        sorted.sort_unstable();
        let eps = slo.telemetry.epsilon();
        for (&(_, q), &v) in REPORTED_QUANTILES.iter().zip(&slo.quantiles) {
            assert!(within_rank_band(&sorted, q, eps, v), "q={q} v={v} outside ε band");
        }
    }

    #[test]
    fn rejects_an_empty_batch() {
        assert!(pipeline_telemetry(16, 0, 1).is_err());
    }
}
