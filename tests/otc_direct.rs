//! The §V/§VI.B validation suite: every algorithm implemented *directly*
//! on the OTC must (a) agree functionally with its OTN twin and the
//! sequential reference, and (b) land within a small constant of the OTN's
//! time — the paper's "the time required on the OTC is the same as on the
//! OTN" — while (c) the OTC's smaller chip turns that into a strictly
//! better AT².

use orthotrees::otc::{self, Otc};
use orthotrees::otn::{self, Otn};
use orthotrees_analysis::workloads;
use orthotrees_baselines::seq;
use orthotrees_layout::otc::OtcLayout;
use orthotrees_layout::otn::OtnLayout;
use orthotrees_vlsi::log2_ceil;

/// Acceptable OTC/OTN time band for "the same time up to constants".
const BAND: std::ops::Range<f64> = 0.2..6.0;

#[test]
fn sort_direct_otc_tracks_otn_and_wins_at2() {
    for &n in &[64usize, 256, 1024] {
        let xs = workloads::distinct_words(n, 1);
        let mut otn_net = Otn::for_sorting(n).unwrap();
        let otn_out = otn::sort::sort(&mut otn_net, &xs).unwrap();
        let mut otc_net = Otc::for_sorting(n).unwrap();
        let otc_out = otc::sort::sort(&mut otc_net, &xs).unwrap();
        assert_eq!(otn_out.sorted, otc_out.sorted, "n={n}");

        let ratio = otc_out.time.as_f64() / otn_out.time.as_f64();
        assert!(BAND.contains(&ratio), "sort n={n}: OTC/OTN = {ratio:.2}");

        let w = log2_ceil(n as u64).max(1);
        let (m, l) = Otc::dims_for(n).unwrap();
        let otn_at2 = OtnLayout::predicted_area_default(n).at2(otn_out.time);
        let otc_at2 = OtcLayout::predicted_area(m, l, w).at2(otc_out.time);
        assert!(otc_at2 < otn_at2, "sort n={n}: OTC AT² must win");
    }
}

#[test]
fn cc_direct_otc_tracks_otn_and_wins_at2() {
    for &n in &[32usize, 64, 128] {
        let adj = workloads::gnp_adjacency(n, 2.0 / n as f64, 7);
        let otn_out = otn::graph::cc::connected_components(&adj).unwrap();
        let otc_out = otc::cc::connected_components(&adj).unwrap();
        assert_eq!(otn_out.labels, otc_out.labels, "n={n}");
        assert_eq!(otc_out.labels, seq::components(n, &workloads::edges_of(&adj)), "n={n}");

        let ratio = otc_out.time.as_f64() / otn_out.time.as_f64();
        assert!(BAND.contains(&ratio), "cc n={n}: OTC/OTN = {ratio:.2}");

        let w = 2 * log2_ceil(n as u64) + 2;
        let (m, l) = Otc::dims_for(n).unwrap();
        let otn_at2 = OtnLayout::predicted_area(n, w).at2(otn_out.time);
        let otc_at2 = OtcLayout::predicted_area(m, l, w).at2(otc_out.time);
        assert!(otc_at2 < otn_at2, "cc n={n}: OTC AT² must win");
    }
}

#[test]
fn mst_direct_otc_tracks_otn() {
    for &n in &[32usize, 64] {
        let weights = workloads::random_weights(n, 4.0 / n as f64, 300, 9);
        let otn_out = otn::graph::mst::minimum_spanning_tree(&weights).unwrap();
        let otc_out = otc::mst::minimum_spanning_tree(&weights).unwrap();
        assert_eq!(otn_out.total_weight, otc_out.total_weight, "n={n}");
        assert_eq!(otn_out.edges.len(), otc_out.edges.len(), "n={n}");
        let (ref_w, _) = seq::kruskal(n, &workloads::weighted_edges_of(&weights));
        assert_eq!(otc_out.total_weight, ref_w, "n={n}");

        let ratio = otc_out.time.as_f64() / otn_out.time.as_f64();
        assert!(BAND.contains(&ratio), "mst n={n}: OTC/OTN = {ratio:.2}");
    }
}

#[test]
fn vector_matrix_direct_otc_tracks_otn() {
    for &n in &[64usize, 256] {
        let b = workloads::random_bool_matrix(n, 0.4, 4);
        let x: Vec<i64> = (0..n as i64).map(|v| v % 7 - 3).collect();

        let mut otn_net = Otn::for_sorting(n).unwrap();
        let breg = otn_net.alloc_reg("B");
        otn_net.load_reg(breg, |i, j| Some(*b.get(i, j)));
        let otn_out = otn::matmul::vector_matrix(&mut otn_net, &x, breg).unwrap();

        let mut otc_net = Otc::for_sorting(n).unwrap();
        let loaded = otc::matmul::LoadedMatrix::load(&mut otc_net, &b).unwrap();
        let otc_out = otc::matmul::vector_matrix(&mut otc_net, &x, &loaded).unwrap();

        assert_eq!(otn_out.y, otc_out.y, "n={n}");
        let ratio = otc_out.time.as_f64() / otn_out.time.as_f64();
        assert!(BAND.contains(&ratio), "vecmat n={n}: OTC/OTN = {ratio:.2}");
    }
}

#[test]
fn emulation_pricing_stays_close_to_direct_measurements() {
    // The op-count §V pricing and the direct implementations must agree to
    // within small constants — each validates the other.
    for &n in &[64usize, 256] {
        let xs = workloads::distinct_words(n, 3);
        let (out, _otn_time, emu) =
            otc::emulate::run_and_price(n, |net| otn::sort::sort(net, &xs)).unwrap();
        assert!(out.sorted.windows(2).all(|w| w[0] <= w[1]));
        let mut direct_net = Otc::for_sorting(n).unwrap();
        let direct = otc::sort::sort(&mut direct_net, &xs).unwrap();
        let ratio = emu.time.as_f64() / direct.time.as_f64();
        assert!((0.3..3.0).contains(&ratio), "n={n}: emulated/direct = {ratio:.2}");
    }
}

#[test]
fn direct_otc_times_are_all_polylog() {
    // Doubling n four times (16×) must grow each direct OTC time far less
    // than any polynomial would.
    let ns = [16usize, 256];
    let growth = |t0: f64, t1: f64| (t1 / t0).ln() / (16.0f64).ln();

    let sort_t: Vec<f64> = ns
        .iter()
        .map(|&n| {
            let mut net = Otc::for_sorting(n).unwrap();
            otc::sort::sort(&mut net, &workloads::distinct_words(n, 5)).unwrap().time.as_f64()
        })
        .collect();
    // (the cycle-length step L: 4→8 at N = 256 adds a one-off constant,
    // which at this range inflates the apparent exponent to ≈0.5)
    assert!(growth(sort_t[0], sort_t[1]) < 0.6, "OTC sort growth");

    let cc_t: Vec<f64> = ns
        .iter()
        .map(|&n| {
            let adj = workloads::path_adjacency(n);
            otc::cc::connected_components(&adj).unwrap().time.as_f64()
        })
        .collect();
    assert!(growth(cc_t[0], cc_t[1]) < 0.85, "OTC CC growth");
}
