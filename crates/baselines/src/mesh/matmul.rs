//! Cannon's systolic matrix multiplication on the mesh (paper ref \[15\],
//! Table II row "Mesh": area `N²`, time `Θ(N)`).
//!
//! `C(i,j) = Σ_k A(i,k)·B(k,j)` with the classic torus schedule: skew row
//! `i` of `A` left by `i` and column `j` of `B` up by `j`, then `N` rounds
//! of multiply-accumulate + unit shifts. The Boolean variant moves 1-bit
//! operands, making the data movement exactly `Θ(N)` bit-times — the
//! optimal Table II mesh entry.

use super::{Dir, Mesh};
use crate::Word;
use orthotrees_vlsi::{BitTime, CostModel, ModelError, OpStats};

/// Result of a mesh matrix multiplication.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeshMatMulOutcome {
    /// The product, row-major.
    pub c: Vec<Vec<Word>>,
    /// Simulated time.
    pub time: BitTime,
    /// Primitive-operation counts.
    pub stats: OpStats,
}

fn cannon(net: &mut Mesh, a: &[Vec<Word>], b: &[Vec<Word>], boolean: bool) -> MeshMatMulOutcome {
    let n = net.rows();
    let areg = net.alloc_reg("A");
    let breg = net.alloc_reg("B");
    let creg = net.alloc_reg("C");
    // Skewed initial placement (the skew itself is n−1 systolic shift
    // rounds per operand; data applied directly, rounds charged).
    net.load_reg(areg, |i, j| Some(a[i][(j + i) % n]));
    net.load_reg(breg, |i, j| Some(b[(i + j) % n][j]));
    net.load_reg(creg, |_, _| Some(0));

    let stats_before = *net.clock().stats();
    let mul_cost = if boolean { net.model().bit_op() } else { net.model().multiply() };
    let (_, time) = net.elapsed(|net| {
        net.charge_shift_rounds(2 * (n as u64 - 1));
        for _ in 0..n {
            net.cell_phase(mul_cost, |i, j, v| {
                let (av, bv, cv) = (
                    v.get(areg, i, j).unwrap_or(0),
                    v.get(breg, i, j).unwrap_or(0),
                    v.get(creg, i, j).unwrap_or(0),
                );
                let next = if boolean {
                    Word::from(cv != 0 || (av != 0 && bv != 0))
                } else {
                    cv + av * bv
                };
                vec![(creg, Some(next))]
            });
            net.shift(areg, Dir::Left, true);
            net.shift(breg, Dir::Up, true);
        }
    });

    let c = (0..n).map(|i| (0..n).map(|j| net.peek(creg, i, j).unwrap_or(0)).collect()).collect();
    let stats = net.clock().stats().since(&stats_before);
    MeshMatMulOutcome { c, time, stats }
}

/// Integer `C = A·B` on an `n×n` mesh (Thompson model, `w = ⌈log₂ n⌉`).
///
/// # Errors
///
/// Returns [`ModelError`] unless `a` and `b` are square `n×n` matrices.
pub fn cannon_matmul(a: &[Vec<Word>], b: &[Vec<Word>]) -> Result<MeshMatMulOutcome, ModelError> {
    let n = a.len();
    validate(n, a, b)?;
    let mut net = Mesh::new(n, n, CostModel::thompson(n))?;
    Ok(cannon(&mut net, a, b, false))
}

/// Boolean `C = A·B` (1-bit operands, AND/OR): the Table II mesh entry.
///
/// # Errors
///
/// Returns [`ModelError`] unless `a` and `b` are square `n×n` matrices.
pub fn cannon_bool_matmul(
    a: &[Vec<Word>],
    b: &[Vec<Word>],
) -> Result<MeshMatMulOutcome, ModelError> {
    let n = a.len();
    validate(n, a, b)?;
    // Boolean operands are single bits: word width 1 for all movement.
    let mut net = Mesh::new(n, n, CostModel::thompson(n).with_word_bits(1))?;
    Ok(cannon(&mut net, a, b, true))
}

fn validate(n: usize, a: &[Vec<Word>], b: &[Vec<Word>]) -> Result<(), ModelError> {
    ModelError::require_at_least("matrix side", n, 1)?;
    for row in a.iter().chain(b.iter()) {
        ModelError::require_equal("matrix row length", n, row.len())?;
    }
    ModelError::require_equal("matrix sides", n, b.len())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;

    #[test]
    fn matches_reference_product() {
        let a = vec![vec![1, 2, 3, 4], vec![0, 1, 0, 1], vec![2, 2, 2, 2], vec![1, 0, 0, 1]];
        let b = vec![vec![1, 0, 0, 0], vec![0, 2, 0, 0], vec![0, 0, 3, 0], vec![0, 0, 0, 4]];
        let out = cannon_matmul(&a, &b).unwrap();
        assert_eq!(out.c, seq::matmul(&a, &b));
    }

    #[test]
    fn random_products_match() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2usize, 4, 8] {
            let gen = |rng: &mut StdRng| -> Vec<Vec<Word>> {
                (0..n).map(|_| (0..n).map(|_| rng.random_range(-5..5)).collect()).collect()
            };
            let (a, b) = (gen(&mut rng), gen(&mut rng));
            let out = cannon_matmul(&a, &b).unwrap();
            assert_eq!(out.c, seq::matmul(&a, &b), "n={n}");
        }
    }

    #[test]
    fn boolean_product_matches_and_is_binary() {
        let a = vec![vec![1, 0, 0, 1], vec![0, 0, 1, 0], vec![1, 1, 0, 0], vec![0, 0, 0, 0]];
        let out = cannon_bool_matmul(&a, &a).unwrap();
        assert_eq!(out.c, seq::bool_matmul(&a, &a));
        assert!(out.c.iter().flatten().all(|&v| v == 0 || v == 1));
    }

    #[test]
    fn time_is_theta_n_for_boolean() {
        // Boolean Cannon: Θ(N) rounds of O(1)-bit work — time/N bounded.
        let t = |n: usize| {
            let a: Vec<Vec<Word>> =
                (0..n).map(|i| (0..n).map(|j| Word::from((i + j) % 3 == 0)).collect()).collect();
            cannon_bool_matmul(&a, &a).unwrap().time.as_f64() / n as f64
        };
        let (r8, r16, r32) = (t(8), t(16), t(32));
        let hi = r8.max(r16).max(r32);
        let lo = r8.min(r16).min(r32);
        assert!(hi / lo < 2.5, "boolean Cannon not Θ(N): {r8} {r16} {r32}");
    }

    #[test]
    fn integer_time_carries_the_word_factor() {
        // Integer words are Θ(log N) bits, so time is Θ(N log N).
        let n = 16;
        let a: Vec<Vec<Word>> = (0..n).map(|_| vec![1; n]).collect();
        let int_t = cannon_matmul(&a, &a).unwrap().time;
        let bool_t = cannon_bool_matmul(&a, &a).unwrap().time;
        assert!(int_t > bool_t);
    }

    #[test]
    fn rejects_crooked_matrices() {
        let a = vec![vec![1, 2], vec![3]];
        let b = vec![vec![1, 2], vec![3, 4]];
        assert!(cannon_matmul(&a, &b).is_err());
    }
}
