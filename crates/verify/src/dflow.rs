//! Symbolic dataflow verification (rules `DFLOW-001..005`).
//!
//! The abstract interpreter in this module executes the symbolic register
//! programs of [`orthotrees::dflow`] — every `PrimitiveSpec` of the
//! registry, composite legs included — over an abstract register file
//! *without running any simulator*. Each abstract cell carries an
//! [`AbsVal`]: a **provenance set** (which leaf words and root ports can
//! reach the cell) and a static bit width. One pass derives four static
//! rules and the static half of a fifth, dynamic one:
//!
//! * **DFLOW-001** — a leg reads a cell that is neither a declared input
//!   nor written by an earlier leg (read-before-write).
//! * **DFLOW-002** — a write is dead: overwritten by a later leg before
//!   any read, or never consumed and not an output.
//! * **DFLOW-003** — one leg writes the same cell twice (the executors
//!   deliver a leg as one pipelined wave, so a double write is a
//!   write-write clobber inside the leg boundary).
//! * **DFLOW-004** — the width of the produced result disagrees with the
//!   registry's `ResultWidth` rule (`Word` = w, `Widened` = w + ⌈log₂ n⌉).
//! * **DFLOW-005** — the static provenance of every output cell must
//!   equal the *dynamic reach* observed in `obs::causal` reach traces of
//!   the real executors, with and without an installed retry-only
//!   [`FaultPlan`] (retries must not change provenance).
//!
//! The dynamic half of DFLOW-005 runs the actual OTN/OTC word machines
//! with a reach-enabled [`Recorder`] and replays the emitted
//! [`ReachEvent`]s round by round: sources resolve against the register
//! state at round start (a leg's writes never feed its own reads), and
//! `First`-monoid primitives are swept one selected leaf at a time so the
//! union of runs covers the full may-reach set the symbolic program
//! declares.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{Finding, Report};
use orthotrees::dflow::{combined_width, program, promised_width, Cell, Loc, Program, WriteOp};
use orthotrees::obs::causal::{ReachCell, ReachEvent};
use orthotrees::obs::Recorder;
use orthotrees::otc::{Otc, OtcRegsView};
use orthotrees::otn::{all, Axis, Otn, RegsView};
use orthotrees::primitive::{spec_for, Monoid, PrimitiveSpec, REGISTRY};
use orthotrees::{CostModel, FaultPlan, Word};

/// Stream-buffer length used by the OTC dynamic harness (any power of two
/// ≥ 2 works; the provenance abstraction is per cycle, not per position).
const STREAM_CYCLE: usize = 4;

/// Where an abstract word originally came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Origin {
    /// The tree root's external port (the value loaded into the root
    /// register / root stream buffer before the primitive ran).
    Port,
    /// The word loaded at leaf (cycle) `0..leaves` before the primitive.
    Leaf(usize),
}

/// The abstract value of one register cell: provenance plus static width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbsVal {
    /// Every origin whose word can reach this cell.
    pub provenance: BTreeSet<Origin>,
    /// Static width of the cell's value in bits.
    pub width: u32,
}

/// Result of symbolically executing one [`Program`].
#[derive(Clone, Debug)]
pub struct Interpretation {
    /// Abstract register file after the last leg.
    pub end: BTreeMap<Cell, AbsVal>,
    /// `DFLOW-001..004` findings collected along the way.
    pub findings: Vec<Finding>,
}

fn fmt_cell(c: Cell) -> String {
    match c.loc {
        Loc::Src => format!("Src[{}]", c.index),
        Loc::Dest => format!("Dest[{}]", c.index),
        Loc::Root => "Root".to_string(),
    }
}

fn fmt_set(s: &BTreeSet<Origin>) -> String {
    let mut parts = Vec::new();
    for o in s {
        parts.push(match o {
            Origin::Port => "Port".to_string(),
            Origin::Leaf(l) => format!("Leaf({l})"),
        });
    }
    format!("{{{}}}", parts.join(", "))
}

/// Symbolically executes `p`, tracking provenance and width per cell and
/// reporting `DFLOW-001..004` violations against `network` (a label for
/// the findings, e.g. `"SUM-LEAFTOLEAF@16"`).
pub fn interpret(network: &str, p: &Program) -> Interpretation {
    let w = p.word_bits;
    let mut findings = Vec::new();
    let mut state: BTreeMap<Cell, AbsVal> = BTreeMap::new();
    for &c in &p.inputs {
        let provenance = match c.loc {
            Loc::Root => BTreeSet::from([Origin::Port]),
            Loc::Src | Loc::Dest => BTreeSet::from([Origin::Leaf(c.index)]),
        };
        state.insert(c, AbsVal { provenance, width: w });
    }
    // Writes from earlier legs that no later read has consumed yet,
    // keyed by cell, valued by the writing leg's name.
    let mut pending: BTreeMap<Cell, &'static str> = BTreeMap::new();
    for leg in &p.legs {
        // Reads resolve against the register file as it stood when the
        // leg started: the executors gather before they scatter.
        let snapshot = state.clone();
        let mut written_this_leg: BTreeSet<Cell> = BTreeSet::new();
        let mut pending_this_leg: BTreeMap<Cell, &'static str> = BTreeMap::new();
        for op in &leg.writes {
            let mut provenance = BTreeSet::new();
            let mut src_width = 0u32;
            for s in &op.sources {
                match snapshot.get(s) {
                    Some(v) => {
                        provenance.extend(v.provenance.iter().copied());
                        src_width = src_width.max(v.width);
                    }
                    None => findings.push(Finding::new(
                        "DFLOW-001",
                        network,
                        fmt_cell(*s),
                        format!(
                            "leg {} reads {} before any write (not an input, not \
                             produced by an earlier leg)",
                            leg.name,
                            fmt_cell(*s)
                        ),
                        "declare the cell as a primitive input or write it first",
                    )),
                }
                // Reading a cell consumes any write a *previous* leg left
                // pending (this leg's own writes are invisible to it).
                pending.remove(s);
            }
            let width = combined_width(
                op.combine,
                if src_width == 0 { w } else { src_width },
                op.sources.len(),
            );
            if !written_this_leg.insert(op.dest) {
                findings.push(Finding::new(
                    "DFLOW-003",
                    network,
                    fmt_cell(op.dest),
                    format!(
                        "leg {} writes {} more than once — a write-write clobber \
                         inside one pipelined wave",
                        leg.name,
                        fmt_cell(op.dest)
                    ),
                    "split the writes across legs or give each its own cell",
                ));
            } else if let Some(writer) = pending.remove(&op.dest) {
                findings.push(Finding::new(
                    "DFLOW-002",
                    network,
                    fmt_cell(op.dest),
                    format!(
                        "leg {writer}'s write to {} is overwritten by leg {} before \
                         any read",
                        fmt_cell(op.dest),
                        leg.name
                    ),
                    "consume the value before overwriting it, or drop the write",
                ));
            }
            state.insert(op.dest, AbsVal { provenance, width });
            pending_this_leg.insert(op.dest, leg.name);
        }
        pending.extend(pending_this_leg);
    }
    let outputs: BTreeSet<Cell> = p.outputs.iter().copied().collect();
    for (c, writer) in &pending {
        if !outputs.contains(c) {
            findings.push(Finding::new(
                "DFLOW-002",
                network,
                fmt_cell(*c),
                format!(
                    "leg {writer}'s write to {} is never consumed and {} is not an \
                     output of {}",
                    fmt_cell(*c),
                    fmt_cell(*c),
                    p.primitive
                ),
                "route the value to an output or a later leg, or drop the write",
            ));
        }
    }
    if let Some(expected) = promised_width(p.result_width, w, p.leaves) {
        for out in &p.outputs {
            match state.get(out) {
                None => findings.push(Finding::new(
                    "DFLOW-004",
                    network,
                    fmt_cell(*out),
                    format!(
                        "output {} is never written, but the registry promises a \
                         {expected}-bit result there",
                        fmt_cell(*out)
                    ),
                    "write the output in some leg or fix the registry entry",
                )),
                Some(v) if v.width != expected => findings.push(Finding::new(
                    "DFLOW-004",
                    network,
                    fmt_cell(*out),
                    format!(
                        "static width {} at {} disagrees with the registry's \
                         {:?} rule ({} bits expected)",
                        v.width,
                        fmt_cell(*out),
                        p.result_width,
                        expected
                    ),
                    "fix the combine monoid or the registry's declared width",
                )),
                Some(_) => {}
            }
        }
    }
    Interpretation { end: state, findings }
}

/// The static rules alone: `DFLOW-001..004` findings for one program.
pub fn lint_program(network: &str, p: &Program) -> Vec<Finding> {
    interpret(network, p).findings
}

/// Dynamic reach observed by running a primitive on the real word
/// machines: for each tree, the union of origins that ever reached each
/// abstract cell (over every run of a `First`-monoid selector sweep).
#[derive(Clone, Debug)]
pub struct DynReach {
    /// One origin map per tree of the executing axis family.
    pub trees: Vec<BTreeMap<Cell, BTreeSet<Origin>>>,
}

/// Replays reach events round by round over the per-tree origin maps.
/// Sources resolve against the state at round start; same-round writes to
/// one cell union (an aggregate's contributors all land together).
fn resolve(
    events: &[ReachEvent],
    trees: usize,
    inputs: &[Cell],
    src_plane: usize,
    dest_plane: Option<usize>,
) -> Vec<BTreeMap<Cell, BTreeSet<Origin>>> {
    let map = |rc: ReachCell| -> Option<Cell> {
        match rc {
            ReachCell::Root => Some(Cell::root()),
            ReachCell::Reg { reg, leaf } => {
                let reg = reg as usize;
                if reg == src_plane {
                    Some(Cell::src(leaf as usize))
                } else if Some(reg) == dest_plane {
                    Some(Cell::dest(leaf as usize))
                } else {
                    None
                }
            }
        }
    };
    let mut init: BTreeMap<Cell, BTreeSet<Origin>> = BTreeMap::new();
    for &c in inputs {
        let origins = match c.loc {
            Loc::Root => BTreeSet::from([Origin::Port]),
            Loc::Src | Loc::Dest => BTreeSet::from([Origin::Leaf(c.index)]),
        };
        init.insert(c, origins);
    }
    let mut state: Vec<BTreeMap<Cell, BTreeSet<Origin>>> = vec![init; trees];
    let mut i = 0;
    while i < events.len() {
        let round = events[i].round;
        let mut j = i;
        while j < events.len() && events[j].round == round {
            j += 1;
        }
        let mut writes: BTreeMap<(usize, Cell), BTreeSet<Origin>> = BTreeMap::new();
        for ev in &events[i..j] {
            let t = ev.tree as usize;
            let (Some(from), Some(to)) = (map(ev.from), map(ev.to)) else { continue };
            let origins = state[t].get(&from).cloned().unwrap_or_default();
            writes.entry((t, to)).or_default().extend(origins);
        }
        for ((t, c), set) in writes {
            state[t].insert(c, set);
        }
        i = j;
    }
    state
}

/// The harness cost model for `leaves`-leaf trees (shared by the static
/// program and the dynamic run, so widths always agree by construction).
fn harness_model(leaves: usize) -> CostModel {
    CostModel::thompson(leaves.max(4))
}

/// The cycle-length parameter the static program of `spec` takes.
fn harness_cycle(spec: &'static PrimitiveSpec, leaves: usize) -> usize {
    if spec.name == "VECTORCIRCULATE" {
        leaves
    } else if spec.network.on_otc() {
        STREAM_CYCLE
    } else {
        1
    }
}

/// The combine monoid that gates the upward movement of `spec` (a
/// composite's is its upward leg's).
fn effective_combine(spec: &'static PrimitiveSpec) -> Option<Monoid> {
    match spec.composite_of {
        Some((up, _)) => spec_for(up).combine,
        None => spec.combine,
    }
}

/// The retry-only fault plan of the resilience suite: words get corrupted
/// and re-sent, nothing is dropped, no leaf goes dark — functional
/// results and provenance must be exactly those of the clean run.
pub fn retry_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_word_fault_rate(0.25)
        .with_drop_fraction(0.0)
        .with_undetectable_fraction(0.0)
        .with_max_retries(8)
}

/// One reach-traced run of an OTN primitive on a single `1 × leaves` row
/// tree. `only` narrows `First`-monoid selectors to a single leaf.
fn run_otn(
    spec: &'static PrimitiveSpec,
    prog: &Program,
    leaves: usize,
    plan: Option<&FaultPlan>,
    only: Option<usize>,
) -> Vec<BTreeMap<Cell, BTreeSet<Origin>>> {
    let mut net = Otn::new(1, leaves, harness_model(leaves)).expect("1×N OTN harness shape");
    let src = net.alloc_reg("src");
    let dest = net.alloc_reg("dest");
    net.load_reg(src, |_, j| Some((j + 1) as Word));
    net.load_row_roots(&[1]);
    if let Some(p) = plan {
        net.install_fault_plan(p.clone());
    }
    let mut rec = Recorder::new();
    rec.enable_reach();
    net.install_recorder(rec);
    let axis = Axis::Rows;
    let pick = move |_i: usize, j: usize, _v: &RegsView<'_>| Some(j) == only;
    match spec.name {
        "ROOTTOLEAF" => net.root_to_leaf(axis, dest, all),
        "LEAFTOROOT" => net.leaf_to_root(axis, src, pick),
        "COUNT-LEAFTOROOT" => net.count_to_root(axis, src),
        "SUM-LEAFTOROOT" => net.sum_to_root(axis, src, all),
        "MIN-LEAFTOROOT" => net.min_to_root(axis, src, all),
        "MAX-LEAFTOROOT" => net.max_to_root(axis, src, all),
        "LEAFTOLEAF" => net.leaf_to_leaf(axis, src, pick, dest, all),
        "COUNT-LEAFTOLEAF" => net.count_to_leaf(axis, src, dest, all),
        "SUM-LEAFTOLEAF" => net.sum_to_leaf(axis, src, all, dest, all),
        "MIN-LEAFTOLEAF" => net.min_to_leaf(axis, src, all, dest, all),
        "MAX-LEAFTOLEAF" => net.max_to_leaf(axis, src, all, dest, all),
        other => unreachable!("no OTN dataflow harness for {other}"),
    }
    let rec = net.take_recorder().expect("recorder stays installed");
    resolve(rec.reach_events(), 1, &prog.inputs, src.index(), Some(dest.index()))
}

/// One reach-traced run of an OTC primitive: stream primitives on an
/// `m = leaves` network's row trees; `VECTORCIRCULATE` on a small `m = 2`
/// network whose cycle length is `leaves` (each cycle is its own "tree").
fn run_otc(
    spec: &'static PrimitiveSpec,
    prog: &Program,
    leaves: usize,
    plan: Option<&FaultPlan>,
    only: Option<usize>,
) -> Vec<BTreeMap<Cell, BTreeSet<Origin>>> {
    if spec.name == "VECTORCIRCULATE" {
        let mut net = Otc::new(2, leaves, harness_model(leaves)).expect("2×2 OTC harness shape");
        let src = net.alloc_reg("src");
        net.load_reg(src, |_, _, q| Some((q + 1) as Word));
        if let Some(p) = plan {
            net.install_fault_plan(p.clone());
        }
        let mut rec = Recorder::new();
        rec.enable_reach();
        net.install_recorder(rec);
        net.circulate(&[src]);
        let rec = net.take_recorder().expect("recorder stays installed");
        return resolve(rec.reach_events(), 4, &prog.inputs, src.index(), None);
    }
    let mut net = Otc::new(leaves, STREAM_CYCLE, harness_model(leaves)).expect("m×m OTC");
    let src = net.alloc_reg("src");
    let dest = net.alloc_reg("dest");
    net.load_reg(src, |i, j, q| Some((i + j + q + 1) as Word));
    net.load_row_root_buffers(&vec![vec![1; STREAM_CYCLE]; leaves]);
    if let Some(p) = plan {
        net.install_fault_plan(p.clone());
    }
    let mut rec = Recorder::new();
    rec.enable_reach();
    net.install_recorder(rec);
    let axis = Axis::Rows;
    let pick = move |_i: usize, j: usize, _q: usize, _v: &OtcRegsView<'_>| Some(j) == only;
    let every = |_: usize, _: usize, _: usize, _: &OtcRegsView<'_>| true;
    match spec.name {
        "ROOTTOCYCLE" => {
            net.root_to_cycle(axis, dest, |_: usize, _: usize, _: &OtcRegsView<'_>| true);
        }
        "CYCLETOROOT" => net.cycle_to_root(axis, src, pick),
        "SUM-CYCLETOROOT" => net.sum_cycle_to_root(axis, src, every),
        "MIN-CYCLETOROOT" => net.min_cycle_to_root(axis, src, every),
        "CYCLETOCYCLE" => {
            net.cycle_to_cycle(axis, src, pick, dest, |_: usize, _: usize, _: &OtcRegsView<'_>| {
                true
            });
        }
        "SUM-CYCLETOCYCLE" => net.sum_cycle_to_cycle(
            axis,
            src,
            every,
            dest,
            |_: usize, _: usize, _: &OtcRegsView<'_>| true,
        ),
        "MIN-CYCLETOCYCLE" => net.min_cycle_to_cycle(
            axis,
            src,
            every,
            dest,
            |_: usize, _: usize, _: &OtcRegsView<'_>| true,
        ),
        other => unreachable!("no OTC dataflow harness for {other}"),
    }
    let rec = net.take_recorder().expect("recorder stays installed");
    resolve(rec.reach_events(), leaves, &prog.inputs, src.index(), Some(dest.index()))
}

/// Runs `spec` on its real network with reach tracing and returns the
/// observed dynamic reach, or `None` when the primitive has no dataflow
/// program. `First`-monoid primitives are swept one selected leaf per run
/// (fresh network each time) and the runs' final origin maps unioned, so
/// the result covers the full may-reach set.
pub fn dynamic_reach(
    spec: &'static PrimitiveSpec,
    leaves: usize,
    plan: Option<&FaultPlan>,
) -> Option<DynReach> {
    let model = harness_model(leaves);
    let prog = program(spec, leaves, harness_cycle(spec, leaves), model.leaf_pitch(), &model)?;
    let runs: Vec<Option<usize>> = if effective_combine(spec) == Some(Monoid::First) {
        (0..leaves).map(Some).collect()
    } else {
        vec![None]
    };
    let mut trees: Option<Vec<BTreeMap<Cell, BTreeSet<Origin>>>> = None;
    for only in runs {
        let run = if spec.network.on_otn() {
            run_otn(spec, &prog, leaves, plan, only)
        } else {
            run_otc(spec, &prog, leaves, plan, only)
        };
        trees = Some(match trees {
            None => run,
            Some(mut acc) => {
                for (a, r) in acc.iter_mut().zip(run) {
                    for (cell, origins) in r {
                        a.entry(cell).or_default().extend(origins);
                    }
                }
                acc
            }
        });
    }
    Some(DynReach { trees: trees.expect("at least one run") })
}

/// Rule DFLOW-005: for every output cell of `p` and every tree, the
/// static provenance must equal the observed dynamic reach.
pub fn lint_agreement(network: &str, p: &Program, dynamic: &DynReach) -> Vec<Finding> {
    let end = interpret(network, p).end;
    let mut out = Vec::new();
    for (t, tree) in dynamic.trees.iter().enumerate() {
        for cell in &p.outputs {
            let stat = end.get(cell).map(|v| v.provenance.clone()).unwrap_or_default();
            let dynv = tree.get(cell).cloned().unwrap_or_default();
            if stat != dynv {
                out.push(Finding::new(
                    "DFLOW-005",
                    network,
                    format!("tree {t} · {}", fmt_cell(*cell)),
                    format!(
                        "static provenance {} ≠ dynamic reach {}",
                        fmt_set(&stat),
                        fmt_set(&dynv)
                    ),
                    "make the executor move exactly the words the symbolic program \
                     declares",
                ));
            }
        }
    }
    out
}

/// Lints the whole registry repertoire at one size: every primitive with
/// a dataflow program gets the static rules plus the static-vs-dynamic
/// agreement check on its real network, with the given fault plan (or
/// none) installed.
pub fn lint_repertoire_agreement(leaves: usize, plan: Option<&FaultPlan>) -> Report {
    let mut report = Report::new();
    let model = harness_model(leaves);
    for spec in REGISTRY {
        let Some(prog) =
            program(spec, leaves, harness_cycle(spec, leaves), model.leaf_pitch(), &model)
        else {
            continue;
        };
        let label =
            format!("{}@{}{}", spec.name, leaves, if plan.is_some() { "+faults" } else { "" });
        report.extend(lint_program(&label, &prog));
        let dynamic = dynamic_reach(spec, leaves, plan).expect("program exists, so does reach");
        report.extend(lint_agreement(&label, &prog, &dynamic));
    }
    report
}

/// The stock dataflow pass `netlint --all` runs: static interpretation of
/// the full registry at several sizes, plus the static-vs-dynamic
/// agreement sweep at 4 leaves — fault-free and under the retry-only
/// plan. Clean on every paper configuration.
pub fn stock_findings() -> Vec<Finding> {
    let mut out = Vec::new();
    for &leaves in &[2usize, 4, 16] {
        let model = harness_model(leaves);
        for spec in REGISTRY {
            if let Some(p) =
                program(spec, leaves, harness_cycle(spec, leaves), model.leaf_pitch(), &model)
            {
                out.extend(lint_program(&format!("{}@{leaves}", spec.name), &p));
            }
        }
    }
    for plan in [None, Some(retry_plan(11))] {
        out.extend(lint_repertoire_agreement(4, plan.as_ref()).findings().to_vec());
    }
    out
}

/// Renders a human-readable provenance report of one program: the legs,
/// their writes with entrance slots, and the end-state provenance of
/// every output cell (the EXPERIMENTS.md "reading a DFLOW provenance
/// report" recipe walks through this output).
pub fn provenance_report(p: &Program) -> String {
    let mut out = format!(
        "{} @ {} leaves, w = {} bits ({:?} result)\n",
        p.primitive, p.leaves, p.word_bits, p.result_width
    );
    let inputs: Vec<String> = p.inputs.iter().map(|c| fmt_cell(*c)).collect();
    out.push_str(&format!("inputs: {}\n", inputs.join(", ")));
    for leg in &p.legs {
        out.push_str(&format!("leg {}:\n", leg.name));
        for op in &leg.writes {
            let sources: Vec<String> = op.sources.iter().map(|c| fmt_cell(*c)).collect();
            out.push_str(&format!(
                "  {} <- {}{} @ slot {}\n",
                fmt_cell(op.dest),
                op.combine.map(|m| format!("{m:?}(")).unwrap_or_default(),
                sources.join(", ") + if op.combine.is_some() { ")" } else { "" },
                op.slot.get()
            ));
        }
    }
    let end = interpret(p.primitive, p).end;
    for cell in &p.outputs {
        if let Some(v) = end.get(cell) {
            out.push_str(&format!(
                "reach {}: {} ({} bits)\n",
                fmt_cell(*cell),
                fmt_set(&v.provenance),
                v.width
            ));
        }
    }
    out
}

/// Corruption classes for the dataflow rules: each mutates an honest
/// symbolic program (or an honest dynamic reach map) in exactly one way
/// and must make its target rule fire — the mutation matrix proves the
/// rules are not vacuous.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DflowMutation {
    /// Erase the declared inputs of `ROOTTOLEAF` → its leg now reads the
    /// root uninitialized (`DFLOW-001`).
    DropInit,
    /// Add a write to a cell outside the output set that nothing reads
    /// (`DFLOW-002`).
    SpuriousWrite,
    /// Duplicate the upward leg's root write of `SUM-LEAFTOLEAF` — the
    /// same cell written twice in one wave (`DFLOW-003`).
    DuplicateWrite,
    /// Flip `SUM-LEAFTOROOT`'s combine to `First`, so the produced width
    /// stops matching the registry's `Widened` promise (`DFLOW-004`).
    WidthTamper,
    /// Inject a phantom origin into an honest dynamic reach map
    /// (`DFLOW-005`).
    PhantomReach,
}

impl DflowMutation {
    /// Every dataflow corruption class.
    pub const ALL: [DflowMutation; 5] = [
        DflowMutation::DropInit,
        DflowMutation::SpuriousWrite,
        DflowMutation::DuplicateWrite,
        DflowMutation::WidthTamper,
        DflowMutation::PhantomReach,
    ];

    /// The rule id this corruption must fire.
    pub fn expected_rule(self) -> &'static str {
        match self {
            DflowMutation::DropInit => "DFLOW-001",
            DflowMutation::SpuriousWrite => "DFLOW-002",
            DflowMutation::DuplicateWrite => "DFLOW-003",
            DflowMutation::WidthTamper => "DFLOW-004",
            DflowMutation::PhantomReach => "DFLOW-005",
        }
    }

    /// Applies the corruption and lints the result.
    pub fn fired(self) -> Report {
        let model = harness_model(8);
        let pitch = model.leaf_pitch();
        let mut report = Report::new();
        match self {
            DflowMutation::DropInit => {
                let mut p = program(spec_for("ROOTTOLEAF"), 8, 1, pitch, &model)
                    .expect("ROOTTOLEAF has a program");
                p.inputs.clear();
                report.extend(lint_program("mutated", &p));
            }
            DflowMutation::SpuriousWrite => {
                let mut p = program(spec_for("ROOTTOLEAF"), 8, 1, pitch, &model)
                    .expect("ROOTTOLEAF has a program");
                let slot = p.legs[0].writes[0].slot;
                p.legs[0].writes.push(WriteOp {
                    dest: Cell::dest(8),
                    sources: vec![Cell::root()],
                    combine: None,
                    slot,
                });
                report.extend(lint_program("mutated", &p));
            }
            DflowMutation::DuplicateWrite => {
                let mut p = program(spec_for("SUM-LEAFTOLEAF"), 8, 1, pitch, &model)
                    .expect("SUM-LEAFTOLEAF has a program");
                let dup = p.legs[0].writes[0].clone();
                p.legs[0].writes.push(dup);
                report.extend(lint_program("mutated", &p));
            }
            DflowMutation::WidthTamper => {
                let mut p = program(spec_for("SUM-LEAFTOROOT"), 8, 1, pitch, &model)
                    .expect("SUM-LEAFTOROOT has a program");
                p.legs[0].writes[0].combine = Some(Monoid::First);
                report.extend(lint_program("mutated", &p));
            }
            DflowMutation::PhantomReach => {
                let spec = spec_for("ROOTTOLEAF");
                let model = harness_model(4);
                let p = program(spec, 4, 1, model.leaf_pitch(), &model)
                    .expect("ROOTTOLEAF has a program");
                let mut d = dynamic_reach(spec, 4, None).expect("harness runs");
                d.trees[0].entry(Cell::dest(1)).or_default().insert(Origin::Leaf(2));
                report.extend(lint_agreement("mutated", &p, &d));
            }
        }
        report
    }
}

/// The dataflow mutation matrix: every corruption class with its report.
pub fn dflow_matrix() -> Vec<(DflowMutation, Report)> {
    DflowMutation::ALL.iter().map(|m| (*m, m.fired())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_dataflow_pass_is_clean() {
        let findings = stock_findings();
        assert!(findings.is_empty(), "{:#?}", findings);
    }

    #[test]
    fn every_dflow_mutation_fires_its_rule_and_only_then() {
        for (m, report) in dflow_matrix() {
            assert!(
                report.has(m.expected_rule()),
                "{m:?} must fire {}: {:#?}",
                m.expected_rule(),
                report.findings()
            );
        }
    }

    #[test]
    fn first_monoid_sweep_covers_the_full_may_reach_set() {
        let spec = spec_for("LEAFTOROOT");
        let d = dynamic_reach(spec, 4, None).unwrap();
        let root = d.trees[0].get(&Cell::root()).unwrap();
        let want: BTreeSet<Origin> = (0..4).map(Origin::Leaf).collect();
        assert_eq!(root, &want, "sweep unions every selectable leaf");
    }

    #[test]
    fn circulate_reach_is_the_cyclic_shift() {
        let spec = spec_for("VECTORCIRCULATE");
        let d = dynamic_reach(spec, 4, None).unwrap();
        assert_eq!(d.trees.len(), 4, "each cycle of the 2×2 OTC is a tree");
        for tree in &d.trees {
            assert_eq!(
                tree.get(&Cell::src(3)),
                Some(&BTreeSet::from([Origin::Leaf(0)])),
                "position 3 now holds position 0's word"
            );
        }
    }

    #[test]
    fn retries_do_not_change_provenance() {
        let plan = retry_plan(7);
        let clean = lint_repertoire_agreement(4, None);
        let faulty = lint_repertoire_agreement(4, Some(&plan));
        assert!(clean.is_clean(), "{}", clean.render_text());
        assert!(faulty.is_clean(), "{}", faulty.render_text());
    }

    #[test]
    fn provenance_report_reads_like_the_docs_say() {
        let model = harness_model(4);
        let p = program(spec_for("SUM-LEAFTOLEAF"), 4, 1, model.leaf_pitch(), &model).unwrap();
        let text = provenance_report(&p);
        assert!(text.contains("leg SUM-LEAFTOROOT:"), "{text}");
        assert!(text.contains("Root <- Sum(Src[0], Src[1], Src[2], Src[3])"), "{text}");
        assert!(text.contains("reach Dest[0]: {Leaf(0), Leaf(1), Leaf(2), Leaf(3)}"), "{text}");
    }
}
