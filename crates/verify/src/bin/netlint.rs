//! `netlint` — run every static verification pass over the stock
//! configurations.
//!
//! ```text
//! netlint [--all] [--json] [--rules]
//! ```
//!
//! - `--all` (default): topology, schedule, word-level, layout,
//!   determinism, checkpoint, critical-path, primitive-registry,
//!   profiler-invariant, symbolic-dataflow and telemetry-invariant
//!   passes over the paper's standard configurations;
//! - `--json`: emit the report as an `orthotrees-verify/v1` JSON document
//!   instead of text;
//! - `--rules`: print the rule catalogue and exit.
//!
//! Exits nonzero if any finding (error or warning) was produced — CI runs
//! this after the test suite, so a drifted convention fails the build.

use orthotrees::otc::Otc;
use orthotrees::otn::Otn;
use orthotrees_verify::diag::Report;
use orthotrees_verify::net::{lint_structure, lint_tree, tree_netlist, DegreeBounds, TreeShape};
use orthotrees_verify::schedule::{
    aggregate_schedule, broadcast_schedule, lint_against_model, lint_budget, lint_conflicts,
    stream_schedule,
};
use orthotrees_verify::{
    ckpt, critpath, determinism, dflow, eng, primitive, profile, telemetry, words, RULES,
};
use orthotrees_vlsi::{tree::level_wire_lengths, CostKind, CostModel};

/// Tree sizes the netlist and schedule passes sweep.
const TREE_LEAVES: [usize; 5] = [2, 4, 16, 64, 256];

/// Problem sizes for the word-level OTN/OTC passes (the paper-claims
/// sweep range).
const SORT_NS: [usize; 6] = [16, 32, 64, 128, 256, 512];
const GRAPH_NS: [usize; 4] = [8, 16, 32, 64];

/// Layout sizes (full geometric construction, so kept modest).
const LAYOUT_NS: [usize; 4] = [2, 4, 8, 16];

fn lint_trees(report: &mut Report) {
    for leaves in TREE_LEAVES {
        let pitch = CostModel::thompson(leaves).leaf_pitch();
        for downward in [true, false] {
            let dir = if downward { "down" } else { "up" };
            let net = tree_netlist(format!("tree[{leaves}]/{dir}"), leaves, pitch, downward);
            report.extend(lint_structure(&net, DegreeBounds::default()));
            report.extend(lint_tree(&net, TreeShape { leaves, pitch, downward }));
        }
    }
}

fn lint_schedules(report: &mut Report) {
    // The expectation table derives from the primitive registry: every
    // distinct tree-traversal cost kind some registry entry declares is
    // re-derived as a static schedule and checked against the same
    // `primitive_cost` closed form the executors charge.
    let mut kinds: Vec<CostKind> = Vec::new();
    for s in orthotrees::primitive::REGISTRY {
        if let Some(kind) = s.cost {
            if !kind.is_stream() && kind != CostKind::CycleStep && !kinds.contains(&kind) {
                kinds.push(kind);
            }
        }
    }
    for leaves in TREE_LEAVES {
        let models = [
            CostModel::thompson(leaves),
            CostModel::constant_delay(leaves),
            CostModel::linear_delay(leaves),
        ];
        for m in models {
            let pitch = m.leaf_pitch();
            let levels = level_wire_lengths(leaves, pitch);

            for &kind in &kinds {
                let name = format!("tree[{leaves}] {kind:?} under {:?}", m.delay);
                // Send shares the broadcast traversal shape: the relay
                // ascent inserts no per-level gate delay (§II.B), which
                // is exactly why tree_leaf_to_root ≡ tree_root_to_leaf.
                let sched = match kind {
                    CostKind::Broadcast | CostKind::Send => {
                        broadcast_schedule(&levels, m.word_bits, m.delay)
                    }
                    CostKind::Aggregate => aggregate_schedule(&levels, m.word_bits, m.delay),
                    other => unreachable!("non-tree kind {other:?} filtered above"),
                };
                report.extend(lint_conflicts(&name, &sched));
                report.extend(lint_budget(&name, &sched, leaves, m.word_bits, m.delay));
                report.extend(lint_against_model(
                    &name,
                    &sched,
                    m.primitive_cost(kind, leaves, pitch, 1),
                ));
            }

            let name = format!("tree[{leaves}] under {:?}", m.delay);
            let words = 8usize;
            let interval = m.pipeline_interval();
            let s = stream_schedule(&levels, m.word_bits, m.delay, words, interval.get());
            report.extend(lint_conflicts(&name, &s));
            let charged = m.tree_root_to_leaf(leaves, pitch) + interval.times(words as u64 - 1);
            report.extend(lint_against_model(&name, &s, charged));
        }
    }
}

fn lint_words(report: &mut Report) {
    for n in SORT_NS {
        match Otn::for_sorting(n) {
            Ok(net) => report.extend(words::lint_otn(&net)),
            Err(e) => eprintln!("netlint: skipping OTN sort n={n}: {e}"),
        }
        match Otc::for_sorting(n) {
            Ok(net) => report.extend(words::lint_otc(&net)),
            Err(e) => eprintln!("netlint: skipping OTC sort n={n}: {e}"),
        }
    }
    for n in GRAPH_NS {
        match Otn::for_graphs(n) {
            Ok(net) => report.extend(words::lint_otn(&net)),
            Err(e) => eprintln!("netlint: skipping OTN graphs n={n}: {e}"),
        }
    }
}

fn lint_layouts(report: &mut Report) {
    for n in LAYOUT_NS {
        let word = orthotrees_vlsi::log2_ceil((n * n) as u64).max(1);
        report.extend(words::lint_layout(n, word));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let unknown: Vec<&String> =
        args.iter().filter(|a| !matches!(a.as_str(), "--all" | "--json" | "--rules")).collect();
    if !unknown.is_empty() {
        eprintln!("netlint: unknown argument(s): {unknown:?}");
        eprintln!("usage: netlint [--all] [--json] [--rules]");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--rules") {
        for r in RULES {
            println!("{} [{}] {}", r.id, r.severity.name(), r.summary);
        }
        return;
    }

    let mut report = Report::new();
    lint_trees(&mut report);
    lint_schedules(&mut report);
    lint_words(&mut report);
    lint_layouts(&mut report);
    report.extend(determinism::stock_findings());
    report.extend(eng::stock_findings());
    report.extend(ckpt::stock_findings());
    report.extend(critpath::stock_findings(&TREE_LEAVES));
    report.extend(primitive::stock_findings());
    report.extend(profile::stock_findings());
    report.extend(dflow::stock_findings());
    report.extend(telemetry::stock_findings());

    if json {
        println!("{}", report.to_json().render());
    } else {
        print!("{}", report.render_text());
    }
    if !report.is_clean() {
        std::process::exit(1);
    }
}
