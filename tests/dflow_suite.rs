//! Static-vs-dynamic dataflow agreement (DFLOW-005) over the full
//! primitive repertoire.
//!
//! The symbolic interpreter in `orthotrees_verify::dflow` claims that its
//! abstract provenance sets are *exact*: for every registry primitive,
//! every output cell's static reach equals the dynamic reach observed by
//! replaying `obs::causal` reach traces of the real OTN/OTC executors.
//! This suite pins that claim across the size sweep `2^2..2^7` leaves,
//! fault-free and under the retry-only fault plan (retried deliveries
//! must never widen or narrow provenance), and property-tests the fault
//! seed so no particular retry pattern can sneak a divergence through.

use orthotrees_verify::dflow::{
    dflow_matrix, dynamic_reach, lint_repertoire_agreement, retry_plan, stock_findings,
};
use orthotrees_verify::Report;
use proptest::prelude::*;

fn assert_clean(report: &Report, context: &str) {
    assert!(report.is_clean(), "{context}: {}", report.render_text());
}

/// The small end of the sweep, exhaustively, with and without faults —
/// cheap enough for the debug-mode tier-1 run.
#[test]
fn repertoire_agreement_holds_at_small_sizes() {
    for k in 2u32..=4 {
        let leaves = 1usize << k;
        assert_clean(&lint_repertoire_agreement(leaves, None), &format!("{leaves} leaves"));
        let plan = retry_plan(0xD0F1 + u64::from(k));
        assert_clean(
            &lint_repertoire_agreement(leaves, Some(&plan)),
            &format!("{leaves} leaves + retries"),
        );
    }
}

/// The large end of the sweep (`2^5..2^7` leaves): the `First`-monoid
/// selector sweeps grow quadratically here, so this half runs in CI's
/// release-mode lint step (`ci.sh`) rather than the debug tier-1 pass.
#[test]
#[ignore = "release-mode CI: large selector sweeps are slow unoptimized"]
fn repertoire_agreement_holds_at_large_sizes() {
    for k in 5u32..=7 {
        let leaves = 1usize << k;
        assert_clean(&lint_repertoire_agreement(leaves, None), &format!("{leaves} leaves"));
        let plan = retry_plan(0xD0F1 + u64::from(k));
        assert_clean(
            &lint_repertoire_agreement(leaves, Some(&plan)),
            &format!("{leaves} leaves + retries"),
        );
    }
}

/// The stock pass `netlint --all` runs must be clean — this is the exact
/// set of findings CI gates on.
#[test]
fn stock_dataflow_pass_is_clean() {
    let findings = stock_findings();
    assert!(findings.is_empty(), "{findings:#?}");
}

/// Every dataflow corruption class fires its exact rule id.
#[test]
fn dflow_mutation_matrix_is_exact() {
    for (m, report) in dflow_matrix() {
        assert!(
            report.has(m.expected_rule()),
            "{m:?} not caught by {}: {}",
            m.expected_rule(),
            report.render_text()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// No retry seed may change provenance: whatever corruption pattern
    /// the plan draws, every word is re-sent until it arrives intact, so
    /// the observed reach must stay identical to the fault-free run's.
    #[test]
    fn retry_seed_never_changes_provenance(seed in 0u64..10_000) {
        let plan = retry_plan(seed);
        let report = lint_repertoire_agreement(4, Some(&plan));
        prop_assert!(report.is_clean(), "seed {}: {}", seed, report.render_text());
    }

    /// Per-primitive dynamic reach is itself deterministic: two traced
    /// runs of the same primitive at the same size resolve to identical
    /// origin maps (the reach layer adds no hidden nondeterminism).
    #[test]
    fn dynamic_reach_is_reproducible(k in 2u32..=4) {
        let leaves = 1usize << k;
        for spec in orthotrees::primitive::REGISTRY {
            let (Some(a), Some(b)) =
                (dynamic_reach(spec, leaves, None), dynamic_reach(spec, leaves, None))
            else {
                continue;
            };
            prop_assert!(a.trees == b.trees, "{} at {} leaves", spec.name, leaves);
        }
    }
}
