//! Graph algorithms on the orthogonal-trees networks: connected components
//! and minimum spanning tree of random graphs, checked against sequential
//! references and compared OTN vs OTC vs mesh — the paper's Table III
//! story, live.
//!
//! Run with: `cargo run -p orthotrees-bench --example graph_components`

use orthotrees::otc::{self, Otc};
use orthotrees::otn::graph::{cc, mst};
use orthotrees_analysis::workloads;
use orthotrees_baselines::{mesh, seq};
use orthotrees_layout::otc::OtcLayout;
use orthotrees_layout::otn::OtnLayout;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64;
    let adj = workloads::gnp_adjacency(n, 0.05, 7);
    let edges = workloads::edges_of(&adj);
    println!("G({n}, 0.05): {} edges", edges.len());

    // --- connected components -----------------------------------------
    let otn = cc::connected_components(&adj)?;
    let reference = seq::components(n, &edges);
    assert_eq!(otn.labels, reference, "OTN CC must match union–find");
    println!(
        "\nOTN connected components: {} components, {} hook-and-shortcut iterations, {}",
        count_distinct(&otn.labels),
        otn.iterations,
        otn.time
    );

    // The OTC runs the same algorithm in (Θ-)equal time but Θ(log² N) less
    // area — §VI.B's direct conversion, measured operation by operation:
    let otc_out = otc::cc::connected_components(&adj)?;
    assert_eq!(otc_out.labels, reference, "OTC CC must match union–find too");
    let (m, l) = Otc::dims_for(n)?;
    let w = 2 * orthotrees_vlsi::log2_ceil(n as u64) + 2;
    let otn_area = OtnLayout::predicted_area(n, w);
    let otc_area = OtcLayout::predicted_area(m, l, w);
    println!("OTC (direct, measured):   {} on an ({m}×{m})-OTC of {l}-cycles", otc_out.time);
    println!(
        "chip areas:               OTN {otn_area}, OTC {otc_area} ({:.1}× smaller)",
        otn_area.as_f64() / otc_area.as_f64()
    );
    println!(
        "AT² (the Table III gap):  OTN {:.3e}, OTC {:.3e}, mesh {:.3e}",
        otn_area.at2(otn.time),
        otc_area.at2(otc_out.time),
        {
            let rows = workloads::grid_to_rows(&adj);
            let mesh_out = mesh::closure::connected_components(&rows)?;
            assert_eq!(mesh_out.labels, reference);
            orthotrees_layout::mesh::MeshLayout::predicted_area(
                n,
                n,
                orthotrees_vlsi::log2_ceil(n as u64),
            )
            .at2(mesh_out.time)
        }
    );

    // --- minimum spanning tree ------------------------------------------
    let weights = workloads::random_weights(n, 0.08, 500, 11);
    let wedges = workloads::weighted_edges_of(&weights);
    let outcome = mst::minimum_spanning_tree(&weights)?;
    let (ref_weight, ref_edges) = seq::kruskal(n, &wedges);
    assert_eq!(outcome.total_weight, ref_weight, "MST weight must match Kruskal");
    println!(
        "\nOTN minimum spanning tree: {} edges, total weight {}, {} Borůvka phases, {}",
        outcome.edges.len(),
        outcome.total_weight,
        outcome.phases,
        outcome.time
    );
    assert_eq!(outcome.edges.len(), ref_edges);
    println!("first edges: {:?}", &outcome.edges[..outcome.edges.len().min(5)]);
    Ok(())
}

fn count_distinct(labels: &[i64]) -> usize {
    let mut v = labels.to_vec();
    v.sort_unstable();
    v.dedup();
    v.len()
}
