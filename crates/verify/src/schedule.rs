//! Static schedule analysis: link-occupancy intervals and race detection.
//!
//! The charged primitives (`charge_broadcast`, `charge_send`,
//! `charge_aggregate` in `orthotrees::otn`) price communication with closed
//! forms. This module re-derives those costs *symbolically* from the
//! per-level wire lengths of the tree embedding: every word's bits claim
//! one entrance slot per τ on each wire of the root↔leaf path, giving a
//! set of `(level, slot range)` occupancy windows.
//!
//! Three checks run over a derived [`Schedule`]:
//! - **SCHED-001** — two words claim overlapping entrance slots on the same
//!   wire (a write-write drive conflict on the shared tree link);
//! - **SCHED-002** — the completion time exceeds the `O(log² N)` budget the
//!   paper promises for tree primitives under the logarithmic model;
//! - **SCHED-003** — the derived completion disagrees with the closed-form
//!   cost the simulator charges, i.e. the cost algebra and the wire-level
//!   schedule have drifted apart.

use crate::diag::Finding;
use orthotrees_vlsi::{log2_ceil, BitTime, DelayModel};

/// One occupancy interval: word `word` holds the entrance of the level-`h`
/// wire for slots `start..=end` (inclusive, in τ).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// Tree level of the occupied wire (1 = just above the leaves).
    pub level: u32,
    /// Index of the word claiming the slots.
    pub word: usize,
    /// First occupied entrance slot.
    pub start: u64,
    /// Last occupied entrance slot.
    pub end: u64,
}

/// A derived static schedule for one primitive on one tree.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Name of the primitive (`broadcast`, `aggregate`, `stream[d]`, ...).
    pub name: String,
    /// All occupancy windows, in derivation order.
    pub windows: Vec<Window>,
    /// Derived completion time: when the last bit reaches its destination.
    pub completion: BitTime,
}

fn delays(levels: &[u64], delay: DelayModel) -> Vec<u64> {
    levels.iter().map(|&len| delay.wire_bit_delay(len).get()).collect()
}

/// Derives the `ROOTTOLEAF` schedule of one `word`-bit word over a tree
/// whose per-level wire lengths are `levels` (index 0 = leaf level, as
/// returned by [`orthotrees_vlsi::tree::level_wire_lengths`]).
///
/// The word enters the root-level wire at slot 0 and streams downward —
/// each repeater IP forwards bits as they arrive, so the entrance of the
/// level-`h` wire opens after the bit delays of all levels above it.
pub fn broadcast_schedule(levels: &[u64], word: u32, delay: DelayModel) -> Schedule {
    let d = delays(levels, delay);
    let depth = d.len() as u32;
    let w = u64::from(word.max(1));
    let mut windows = Vec::with_capacity(d.len());
    let mut start = 0u64;
    for h in (1..=depth).rev() {
        windows.push(Window { level: h, word: 0, start, end: start + w - 1 });
        start += d[(h - 1) as usize];
    }
    // `start` is now the arrival of the first bit at the leaves.
    Schedule { name: "broadcast".into(), windows, completion: BitTime::new(start + w - 1) }
}

/// Derives the `LEAFTOROOT` aggregate schedule: the word climbs the tree,
/// each IP inserting one gate delay (bit-serial add/compare stage), and
/// widens to `word + depth` bits (SUM/COUNT carry growth; MIN is charged
/// the same safe bound, matching [`CostModel::tree_aggregate`]).
///
/// [`CostModel::tree_aggregate`]: orthotrees_vlsi::CostModel::tree_aggregate
pub fn aggregate_schedule(levels: &[u64], word: u32, delay: DelayModel) -> Schedule {
    let d = delays(levels, delay);
    let depth = d.len() as u32;
    let widened = u64::from(word.max(1) + depth);
    let mut windows = Vec::with_capacity(d.len());
    let mut start = 0u64;
    for h in 1..=depth {
        windows.push(Window { level: h, word: 0, start, end: start + widened - 1 });
        // Wire delay of this level, plus the gate delay of the IP above it.
        start += d[(h - 1) as usize] + 1;
    }
    // `start` already includes the root's combine gate delay.
    Schedule { name: "aggregate".into(), windows, completion: BitTime::new(start + widened - 1) }
}

/// Derives the pipelined-stream schedule of `words` successive words
/// issued `interval` τ apart down the same tree (paper §III.A: "pipelining
/// implies a separation of O(log N) time between successive elements").
pub fn stream_schedule(
    levels: &[u64],
    word: u32,
    delay: DelayModel,
    words: usize,
    interval: u64,
) -> Schedule {
    let single = broadcast_schedule(levels, word, delay);
    let mut windows = Vec::with_capacity(single.windows.len() * words.max(1));
    for k in 0..words.max(1) {
        let shift = k as u64 * interval;
        windows.extend(single.windows.iter().map(|wd| Window {
            word: k,
            start: wd.start + shift,
            end: wd.end + shift,
            ..*wd
        }));
    }
    let tail = (words.max(1) as u64 - 1) * interval;
    Schedule {
        name: format!("stream[{words}]"),
        windows,
        completion: single.completion + BitTime::new(tail),
    }
}

/// SCHED-001: reports every pair of words whose entrance windows overlap on
/// the same wire — a write-write drive conflict.
pub fn lint_conflicts(network: &str, sched: &Schedule) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut by_level = sched.windows.clone();
    by_level.sort_by_key(|w| (w.level, w.start, w.word));
    for pair in by_level.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if a.level == b.level && a.word != b.word && b.start <= a.end {
            out.push(Finding::new(
                "SCHED-001",
                network,
                format!("{} level-{} wire", sched.name, a.level),
                format!(
                    "word {} holds entrance slots {}..={} but word {} enters at {}",
                    a.word, a.start, a.end, b.word, b.start
                ),
                "issue successive words at least one word-length apart (pipeline interval)",
            ));
        }
    }
    out
}

/// SCHED-002: warns when a derived tree-primitive completion exceeds the
/// `O(log² N)` budget. Only meaningful under the constant and logarithmic
/// delay models — linear-delay trees are Θ(N) by design, so they are
/// skipped rather than flagged.
pub fn lint_budget(
    network: &str,
    sched: &Schedule,
    leaves: usize,
    word: u32,
    delay: DelayModel,
) -> Vec<Finding> {
    if delay == DelayModel::Linear {
        return Vec::new();
    }
    let d = u64::from(log2_ceil(leaves as u64));
    let w = u64::from(word.max(1));
    // Generous constant: a root↔leaf path costs at most (1+log wire)·depth
    // plus the word tail, so 4·(depth + w + 1)² dominates every legitimate
    // tree primitive while still catching asymptotic regressions.
    let budget = 4 * (d + w + 1) * (d + w + 1);
    if sched.completion.get() > budget {
        return vec![Finding::new(
            "SCHED-002",
            network,
            format!("{} over {leaves} leaves", sched.name),
            format!("completion {} τ exceeds the O(log² N) budget {budget} τ", sched.completion),
            "a tree primitive must finish in O(log² N); check for stretched wires",
        )];
    }
    Vec::new()
}

/// SCHED-003: checks the derived completion against the closed-form cost
/// the cost algebra charges for the same primitive.
pub fn lint_against_model(network: &str, sched: &Schedule, charged: BitTime) -> Vec<Finding> {
    if sched.completion != charged {
        return vec![Finding::new(
            "SCHED-003",
            network,
            sched.name.clone(),
            format!(
                "derived schedule completes at {} τ but the cost algebra charges {} τ",
                sched.completion, charged
            ),
            "the symbolic schedule and CostModel must agree; one of them has drifted",
        )];
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthotrees_vlsi::{tree::level_wire_lengths, CostModel};

    fn model(leaves: usize) -> CostModel {
        CostModel::thompson(leaves)
    }

    #[test]
    fn broadcast_matches_the_charged_closed_form() {
        for leaves in [2usize, 4, 16, 256] {
            for m in [model(leaves), CostModel::constant_delay(leaves)] {
                let levels = level_wire_lengths(leaves, m.leaf_pitch());
                let s = broadcast_schedule(&levels, m.word_bits, m.delay);
                let charged = m.tree_root_to_leaf(leaves, m.leaf_pitch());
                assert!(lint_against_model("t", &s, charged).is_empty(), "leaves={leaves}");
            }
        }
    }

    #[test]
    fn aggregate_matches_the_charged_closed_form() {
        for leaves in [2usize, 8, 64] {
            let m = model(leaves);
            let levels = level_wire_lengths(leaves, m.leaf_pitch());
            let s = aggregate_schedule(&levels, m.word_bits, m.delay);
            let charged = m.tree_aggregate(leaves, m.leaf_pitch());
            assert!(lint_against_model("t", &s, charged).is_empty(), "leaves={leaves}");
        }
    }

    #[test]
    fn stretched_wire_breaks_sched003() {
        let m = model(16);
        let mut levels = level_wire_lengths(16, m.leaf_pitch());
        levels[2] *= 5;
        let s = broadcast_schedule(&levels, m.word_bits, m.delay);
        let charged = m.tree_root_to_leaf(16, m.leaf_pitch());
        let f = lint_against_model("t", &s, charged);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "SCHED-003");
    }

    #[test]
    fn well_spaced_stream_has_no_conflicts() {
        let m = model(64);
        let levels = level_wire_lengths(64, m.leaf_pitch());
        let s = stream_schedule(&levels, m.word_bits, m.delay, 8, m.pipeline_interval().get());
        assert!(lint_conflicts("t", &s).is_empty());
        let charged = m.tree_root_to_leaf(64, m.leaf_pitch()) + m.pipeline_interval().times(7);
        assert!(lint_against_model("t", &s, charged).is_empty());
    }

    #[test]
    fn over_eager_stream_is_a_drive_conflict() {
        let m = model(64);
        let levels = level_wire_lengths(64, m.leaf_pitch());
        // Issue faster than one word-length apart: entrances collide.
        let s = stream_schedule(&levels, m.word_bits, m.delay, 4, 1);
        let f = lint_conflicts("t", &s);
        assert!(f.iter().any(|f| f.rule == "SCHED-001"), "{f:?}");
    }

    #[test]
    fn log_model_primitives_fit_the_budget() {
        for leaves in [4usize, 64, 1024] {
            let m = model(leaves);
            let levels = level_wire_lengths(leaves, m.leaf_pitch());
            let s = broadcast_schedule(&levels, m.word_bits, m.delay);
            assert!(lint_budget("t", &s, leaves, m.word_bits, m.delay).is_empty(), "{leaves}");
            let a = aggregate_schedule(&levels, m.word_bits, m.delay);
            assert!(lint_budget("t", &a, leaves, m.word_bits, m.delay).is_empty(), "{leaves}");
        }
    }

    #[test]
    fn wildly_stretched_tree_blows_the_budget() {
        // Under the logarithmic model a stretch only costs log₂ of itself,
        // so it takes an astronomic wire to break the budget — which is
        // exactly the point: legitimate embeddings never get close.
        let m = model(4);
        let levels: Vec<u64> =
            level_wire_lengths(4, m.leaf_pitch()).iter().map(|&l| l << 50).collect();
        let s = broadcast_schedule(&levels, m.word_bits, m.delay);
        let f = lint_budget("t", &s, 4, m.word_bits, m.delay);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "SCHED-002");
        assert_eq!(f[0].severity, crate::diag::Severity::Warning);
    }

    #[test]
    fn linear_model_is_exempt_from_the_budget() {
        let m = CostModel::linear_delay(1024);
        let levels = level_wire_lengths(1024, m.leaf_pitch());
        let s = broadcast_schedule(&levels, m.word_bits, m.delay);
        assert!(lint_budget("t", &s, 1024, m.word_bits, m.delay).is_empty());
    }
}
