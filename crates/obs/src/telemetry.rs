//! Streaming telemetry bus: typed metrics with ε-bounded quantile
//! sketches, periodic time-series snapshots, and exporters.
//!
//! The [`Recorder`](crate::Recorder) and [`Profiler`](crate::profile::Profiler)
//! answer "how much" and "when" for a *finished* run; neither can report
//! live service-level quantities — sustained problems/sec, p50/p99
//! completion latency — over a stream of pipelined problems. The
//! [`Telemetry`] registry closes that gap with three metric types:
//!
//! * **Counters** — monotone named `u64`s (`engine.delivered`,
//!   `pipeline.problems`);
//! * **Gauges** — last-written named `u64`s (`pipeline.issue_interval_tau`);
//! * **Quantile sketches** — [`QuantileSketch`], a deterministic
//!   Greenwald–Khanna-style streaming summary with a provable rank-error
//!   bound: `quantile(q)` returns a recorded value whose rank is within
//!   `ε·n` of `⌈q·n⌉`. In-house because all dependencies are vendored.
//!
//! The registry also emits **periodic snapshots** of all counters on the
//! *simulated* clock (cadence [`Telemetry::interval`]; the row count is
//! bounded — past [`MAX_SNAPSHOTS`] the cadence doubles and the series
//! thins deterministically), so a long pipelined run leaves a time series,
//! not just totals.
//!
//! Two export formats: [`Telemetry::open_metrics`] renders the OpenMetrics
//! text exposition (counters as `_total`, sketches as `summary` families),
//! and [`Telemetry::to_json`] renders the schema-checked
//! [`orthotrees-telemetry/v1`](SCHEMA) document that
//! [`schema_violations`] validates.
//!
//! Attachment points follow the established Option-gated zero-overhead
//! pattern: `sim::Engine` accepts an `Option<Telemetry>` (no telemetry
//! installed ⇒ the hot loop touches no telemetry code; installed ⇒ bits,
//! clocks and outputs unchanged — proptest-pinned like the Recorder), and
//! the word-level `Otn`/`Otc` machines feed one through their central
//! clock-charge path. The `TEL-001` verify rule holds every sketch to its
//! ε bound against exactly recomputed quantiles.

use crate::json::Json;
use orthotrees_vlsi::BitTime;
use std::collections::BTreeMap;

/// The JSON schema identifier emitted by [`Telemetry::to_json`].
pub const SCHEMA: &str = "orthotrees-telemetry/v1";

/// Default sketch rank-error bound ε: quantile answers are within 1% of
/// the exact rank.
pub const DEFAULT_EPSILON: f64 = 0.01;

/// Snapshot-row bound: one more row than this doubles the snapshot
/// cadence and thins the series (every other row kept), so memory stays
/// O(1) in run length.
pub const MAX_SNAPSHOTS: usize = 128;

/// The quantiles every exporter and verifier reports, as `(label, q)`.
pub const REPORTED_QUANTILES: [(&str, f64); 3] = [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)];

/// One Greenwald–Khanna tuple: a stored value `v` covering `g` ranks,
/// with `delta` slack in where those ranks may sit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Entry {
    v: u64,
    g: u64,
    delta: u64,
}

/// A deterministic streaming quantile sketch with rank error ≤ `ε·n`.
///
/// The simplified Greenwald–Khanna construction: stored tuples maintain
/// `g + Δ ≤ ⌊2εn⌋`, new values insert with `Δ = ⌊2εn⌋ − 1` (0 at the
/// extremes), and a periodic compress pass merges adjacent tuples whose
/// combined span still fits the invariant. [`quantile`](Self::quantile)
/// then answers with a *recorded* value whose rank differs from the
/// requested `⌈q·n⌉` by at most `⌈ε·n⌉` — the bound the `TEL-001` verify
/// rule and the sketch-accuracy proptests hold to account.
#[derive(Clone, Debug)]
pub struct QuantileSketch {
    epsilon: f64,
    entries: Vec<Entry>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    since_compress: u64,
}

impl QuantileSketch {
    /// An empty sketch with rank-error bound `epsilon` (clamped to
    /// `[0.0001, 0.5]`).
    pub fn new(epsilon: f64) -> QuantileSketch {
        QuantileSketch {
            epsilon: epsilon.clamp(0.0001, 0.5),
            entries: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            since_compress: 0,
        }
    }

    /// The rank-error bound ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of values observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest observed value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observed value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Stored tuples — the sketch's memory footprint, O(1/ε · log(εn))
    /// rather than O(n).
    pub fn entries_len(&self) -> usize {
        self.entries.len()
    }

    /// The invariant ceiling `⌊2εn⌋` every stored tuple's `g + Δ` must
    /// respect.
    fn cap(&self) -> u64 {
        (2.0 * self.epsilon * self.count as f64).floor() as u64
    }

    /// Records one value.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let pos = self.entries.partition_point(|e| e.v < value);
        let delta =
            if pos == 0 || pos == self.entries.len() { 0 } else { self.cap().saturating_sub(1) };
        self.entries.insert(pos, Entry { v: value, g: 1, delta });
        self.since_compress += 1;
        if self.since_compress as f64 >= 1.0 / (2.0 * self.epsilon) {
            self.compress();
            self.since_compress = 0;
        }
    }

    /// Merges adjacent tuples whose combined rank span still fits the
    /// `g + Δ ≤ ⌊2εn⌋` invariant. Never merges into the first tuple, so
    /// the minimum stays exactly representable.
    fn compress(&mut self) {
        let cap = self.cap();
        let mut i = self.entries.len().saturating_sub(1);
        while i >= 2 {
            let left = self.entries[i - 1];
            let right = self.entries[i];
            if left.g + right.g + right.delta <= cap {
                self.entries[i].g += left.g;
                self.entries.remove(i - 1);
            }
            i -= 1;
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`): a recorded value whose
    /// rank is within `⌈ε·n⌉` of `⌈q·n⌉`. `None` when nothing was
    /// observed, mirroring the `Histogram::mean` empty contract (callers
    /// render `None` explicitly rather than a poisoned 0).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let n = self.count as f64;
        let rank = (q * n).ceil().max(1.0);
        let margin = self.epsilon * n;
        // The standard GK answer: the first tuple whose rank envelope
        // [rmin, rmax] sits within ±εn of the target. One always exists
        // under the g + Δ ≤ 2εn invariant.
        let mut rmin = 0u64;
        for e in &self.entries {
            rmin += e.g;
            let rmax = (rmin + e.delta) as f64;
            if rank - rmin as f64 <= margin && rmax - rank <= margin {
                return Some(e.v);
            }
        }
        self.entries.last().map(|e| e.v)
    }

    /// Mean observed value (0.0 when empty — same contract as
    /// `Histogram::mean`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Whether `value` sits inside the rank-ε band of the exact quantile `q`
/// over `sorted` (ascending) data: some rank in
/// `[⌈q·n⌉ − ⌈εn⌉, ⌈q·n⌉ + ⌈εn⌉]` (clamped to `[1, n]`) holds `value`'s
/// position. This is the acceptance predicate of the `TEL-001` verify
/// rule and the sketch-accuracy proptests. An empty `sorted` accepts
/// nothing.
pub fn within_rank_band(sorted: &[u64], q: f64, epsilon: f64, value: u64) -> bool {
    if sorted.is_empty() {
        return false;
    }
    let n = sorted.len() as f64;
    let rank = (q.clamp(0.0, 1.0) * n).ceil().max(1.0);
    let margin = (epsilon * n).ceil();
    let lo = ((rank - margin).max(1.0) as usize).saturating_sub(1);
    let hi = (((rank + margin).min(n)) as usize).saturating_sub(1);
    sorted[lo] <= value && value <= sorted[hi]
}

/// One periodic snapshot row: every counter's value at a simulated-time
/// boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Simulated time the row was taken.
    pub at: BitTime,
    /// Counter values at `at` (monotone across rows, by construction).
    pub counters: BTreeMap<String, u64>,
}

/// The streaming metrics bus: a typed registry of counters, gauges and
/// quantile sketches with periodic snapshots and two exporters. See the
/// [module docs](self).
#[derive(Clone, Debug)]
pub struct Telemetry {
    epsilon: f64,
    interval: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    sketches: BTreeMap<String, QuantileSketch>,
    snapshots: Vec<TelemetrySnapshot>,
    next_at: u64,
}

impl Telemetry {
    /// An empty registry snapshotting every `interval` τ (clamped ≥ 1),
    /// with the [default ε](DEFAULT_EPSILON) for new sketches.
    pub fn new(interval: u64) -> Telemetry {
        Telemetry {
            epsilon: DEFAULT_EPSILON,
            interval: interval.max(1),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            sketches: BTreeMap::new(),
            snapshots: Vec::new(),
            next_at: interval.max(1),
        }
    }

    /// Replaces the rank-error bound used by sketches created *after*
    /// this call.
    pub fn with_epsilon(mut self, epsilon: f64) -> Telemetry {
        self.epsilon = epsilon.clamp(0.0001, 0.5);
        self
    }

    /// The sketch rank-error bound ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The effective snapshot cadence in τ (≥ the constructor argument;
    /// doubles when the series outgrows [`MAX_SNAPSHOTS`]).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Adds `delta` to the named counter (created at 0 on first use;
    /// a zero delta creates nothing).
    pub fn count(&mut self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// One counter's value (0 if never counted).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// One gauge's value, if ever set.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Records `value` into the named quantile sketch (created with the
    /// registry's ε on first use).
    pub fn observe(&mut self, name: &str, value: u64) {
        let eps = self.epsilon;
        self.sketches
            .entry(name.to_string())
            .or_insert_with(|| QuantileSketch::new(eps))
            .observe(value);
    }

    /// The named sketch, if any value was ever observed into it.
    pub fn sketch(&self, name: &str) -> Option<&QuantileSketch> {
        self.sketches.get(name)
    }

    /// The sketches, sorted by name.
    pub fn sketches(&self) -> impl Iterator<Item = (&str, &QuantileSketch)> {
        self.sketches.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Advances the simulated clock to `at`, emitting one snapshot row if
    /// a cadence boundary was crossed since the last tick. Hot-path
    /// callers (the engine's delivery loop) call this once per event; the
    /// common case is a single comparison.
    pub fn tick(&mut self, at: BitTime) {
        if at.get() < self.next_at {
            return;
        }
        self.snapshots.push(TelemetrySnapshot { at, counters: self.counters.clone() });
        self.next_at = (at.get() / self.interval + 1) * self.interval;
        if self.snapshots.len() > MAX_SNAPSHOTS {
            // Double the cadence and thin deterministically: keep every
            // other row (the newest always survives).
            self.interval *= 2;
            let keep: Vec<TelemetrySnapshot> = self
                .snapshots
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == 1)
                .map(|(_, s)| s.clone())
                .collect();
            self.snapshots = keep;
        }
    }

    /// The periodic snapshot rows, in simulated-time order.
    pub fn snapshots(&self) -> &[TelemetrySnapshot] {
        &self.snapshots
    }

    // --------------------------------------------------------------
    // Exporters.
    // --------------------------------------------------------------

    /// The registry in OpenMetrics text exposition format: counters as
    /// `<name>_total`, gauges plain, sketches as `summary` families with
    /// the [reported quantiles](REPORTED_QUANTILES) plus `_count`/`_sum`,
    /// terminated by `# EOF`. Metric names are sanitized to the
    /// OpenMetrics charset (`[a-zA-Z0-9_]`, dots become underscores).
    pub fn open_metrics(&self) -> String {
        let mut out = String::new();
        for (name, &v) in &self.counters {
            let n = metric_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n}_total {v}\n"));
        }
        for (name, &v) in &self.gauges {
            let n = metric_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, sk) in &self.sketches {
            let n = metric_name(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (_, q) in REPORTED_QUANTILES {
                if let Some(v) = sk.quantile(q) {
                    out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
                }
            }
            out.push_str(&format!("{n}_count {}\n{n}_sum {}\n", sk.count(), sk.sum()));
        }
        out.push_str("# EOF\n");
        out
    }

    /// The registry as an [`orthotrees-telemetry/v1`](SCHEMA) JSON
    /// document: counters, gauges, per-sketch quantile summaries and the
    /// snapshot series. [`schema_violations`] validates the result.
    pub fn to_json(&self) -> Json {
        let counters = Json::obj(self.counters.iter().map(|(k, &v)| (k.as_str(), Json::u64(v))));
        let gauges = Json::obj(self.gauges.iter().map(|(k, &v)| (k.as_str(), Json::u64(v))));
        let sketches = Json::arr(self.sketches.iter().map(|(name, sk)| {
            let mut fields = vec![
                ("name", Json::str(name)),
                ("count", Json::u64(sk.count())),
                ("min", Json::u64(sk.min())),
                ("max", Json::u64(sk.max())),
                ("mean", Json::f64(sk.mean())),
            ];
            for (label, q) in REPORTED_QUANTILES {
                fields.push((label, Json::u64(sk.quantile(q).unwrap_or(0))));
            }
            Json::obj(fields)
        }));
        let snapshots = Json::arr(self.snapshots.iter().map(|s| {
            Json::obj([
                ("at", Json::u64(s.at.get())),
                (
                    "counters",
                    Json::obj(s.counters.iter().map(|(k, &v)| (k.as_str(), Json::u64(v)))),
                ),
            ])
        }));
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("epsilon", Json::f64(self.epsilon)),
            ("interval", Json::u64(self.interval)),
            ("counters", counters),
            ("gauges", gauges),
            ("sketches", sketches),
            ("snapshots", snapshots),
        ])
    }
}

/// Sanitizes a registry name into the OpenMetrics charset: every
/// character outside `[a-zA-Z0-9_]` becomes `_`, and a leading digit is
/// prefixed with `_`.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Structural checks on an [`orthotrees-telemetry/v1`](SCHEMA) document.
/// Empty means valid. Checked: the schema tag; ε in `(0, 0.5]`; a
/// positive cadence; well-typed counter/gauge maps; per-sketch field
/// presence with `min ≤ p50 ≤ p90 ≤ p99 ≤ max` and a positive count; and
/// a snapshot series monotone in both time and every counter (counters
/// are monotone by definition — a decreasing series means torn rows).
pub fn schema_violations(doc: &Json) -> Vec<String> {
    let mut v = Vec::new();
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => v.push(format!("schema is {s:?}, expected {SCHEMA:?}")),
        None => v.push("missing `schema`".to_string()),
    }
    match doc.get("epsilon").and_then(Json::as_f64) {
        Some(e) if e > 0.0 && e <= 0.5 => {}
        Some(e) => v.push(format!("epsilon {e} outside (0, 0.5]")),
        None => v.push("missing `epsilon`".to_string()),
    }
    match doc.get("interval").and_then(Json::as_u64) {
        Some(i) if i >= 1 => {}
        _ => v.push("missing or zero `interval`".to_string()),
    }
    for key in ["counters", "gauges"] {
        match doc.get(key).and_then(Json::as_obj) {
            Some(map) => {
                for (name, val) in map {
                    if val.as_u64().is_none() {
                        v.push(format!("{key}[{name:?}] is not an integer"));
                    }
                }
            }
            None => v.push(format!("missing `{key}` object")),
        }
    }
    match doc.get("sketches").and_then(Json::as_arr) {
        Some(rows) => {
            for (i, row) in rows.iter().enumerate() {
                let name = row
                    .get("name")
                    .and_then(Json::as_str)
                    .map_or_else(|| format!("#{i}"), str::to_string);
                let field = |k: &str| row.get(k).and_then(Json::as_u64);
                let (count, min, max) = (field("count"), field("min"), field("max"));
                let (p50, p90, p99) = (field("p50"), field("p90"), field("p99"));
                match (count, min, max, p50, p90, p99) {
                    (Some(c), Some(mn), Some(mx), Some(a), Some(b), Some(d)) => {
                        if c == 0 {
                            v.push(format!("sketch {name}: zero count"));
                        }
                        if !(mn <= a && a <= b && b <= d && d <= mx) {
                            v.push(format!(
                                "sketch {name}: quantiles not monotone \
                                 (min {mn} p50 {a} p90 {b} p99 {d} max {mx})"
                            ));
                        }
                    }
                    _ => v.push(format!("sketch {name}: missing required fields")),
                }
            }
        }
        None => v.push("missing `sketches` array".to_string()),
    }
    match doc.get("snapshots").and_then(Json::as_arr) {
        Some(rows) => {
            let mut last_at = 0u64;
            let mut last: BTreeMap<String, u64> = BTreeMap::new();
            for (i, row) in rows.iter().enumerate() {
                let Some(at) = row.get("at").and_then(Json::as_u64) else {
                    v.push(format!("snapshot #{i}: missing `at`"));
                    continue;
                };
                if at < last_at {
                    v.push(format!("snapshot #{i}: time went backwards ({at} < {last_at})"));
                }
                last_at = at;
                let Some(counters) = row.get("counters").and_then(Json::as_obj) else {
                    v.push(format!("snapshot #{i}: missing `counters`"));
                    continue;
                };
                for (name, val) in counters {
                    let Some(c) = val.as_u64() else {
                        v.push(format!("snapshot #{i}: counter {name:?} is not an integer"));
                        continue;
                    };
                    if let Some(&prev) = last.get(name) {
                        if c < prev {
                            v.push(format!(
                                "snapshot #{i}: counter {name:?} decreased ({c} < {prev})"
                            ));
                        }
                    }
                    last.insert(name.clone(), c);
                }
            }
        }
        None => v.push("missing `snapshots` array".to_string()),
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact rank check: the sketch's answer for `q` must sit within the
    /// ±⌈εn⌉ rank band of the sorted data.
    fn assert_accurate(data: &mut [u64], sk: &QuantileSketch) {
        data.sort_unstable();
        for (_, q) in REPORTED_QUANTILES {
            let got = sk.quantile(q).expect("non-empty sketch");
            assert!(
                within_rank_band(data, q, sk.epsilon(), got),
                "q={q}: {got} outside the rank band of {} samples",
                data.len()
            );
        }
    }

    #[test]
    fn sketch_is_exact_on_small_streams() {
        let mut sk = QuantileSketch::new(0.01);
        for v in [5u64, 1, 9, 3, 7] {
            sk.observe(v);
        }
        assert_eq!(sk.count(), 5);
        assert_eq!(sk.min(), 1);
        assert_eq!(sk.max(), 9);
        assert_eq!(sk.sum(), 25);
        assert_eq!(sk.quantile(0.5), Some(5));
        assert_eq!(sk.quantile(0.0), Some(1));
        assert_eq!(sk.quantile(1.0), Some(9));
    }

    #[test]
    fn sketch_empty_contract() {
        let sk = QuantileSketch::new(0.01);
        assert_eq!(sk.quantile(0.5), None);
        assert_eq!(sk.mean(), 0.0);
        assert_eq!(sk.min(), 0);
        assert_eq!(sk.max(), 0);
    }

    #[test]
    fn sketch_stays_accurate_and_small_on_long_streams() {
        let mut sk = QuantileSketch::new(0.02);
        let mut data = Vec::new();
        // A deterministic scrambled stream with duplicates and jumps.
        for i in 0..10_000u64 {
            let v = (i * 37) ^ (i >> 3) ^ 0x15;
            sk.observe(v);
            data.push(v);
        }
        assert_accurate(&mut data, &sk);
        assert!(
            sk.entries_len() < 2_000,
            "sketch must stay sublinear: {} tuples for 10k samples",
            sk.entries_len()
        );
    }

    #[test]
    fn sketch_handles_sorted_and_reversed_streams() {
        for reversed in [false, true] {
            let mut sk = QuantileSketch::new(0.01);
            let mut data = Vec::new();
            for i in 0..5_000u64 {
                let v = if reversed { 5_000 - i } else { i };
                sk.observe(v);
                data.push(v);
            }
            assert_accurate(&mut data, &sk);
        }
    }

    #[test]
    fn sketch_handles_constant_streams() {
        let mut sk = QuantileSketch::new(0.01);
        for _ in 0..1_000 {
            sk.observe(42);
        }
        assert_eq!(sk.quantile(0.5), Some(42));
        assert_eq!(sk.quantile(0.99), Some(42));
        assert!(sk.entries_len() < 200);
    }

    #[test]
    fn rank_band_predicate_matches_hand_computation() {
        let sorted: Vec<u64> = (1..=100).collect();
        // q=0.5 over 100 samples: rank 50, ε=0.01 → band ranks [49, 51].
        assert!(within_rank_band(&sorted, 0.5, 0.01, 49));
        assert!(within_rank_band(&sorted, 0.5, 0.01, 51));
        assert!(!within_rank_band(&sorted, 0.5, 0.01, 48));
        assert!(!within_rank_band(&sorted, 0.5, 0.01, 52));
        assert!(!within_rank_band(&[], 0.5, 0.01, 1), "empty data accepts nothing");
    }

    #[test]
    fn registry_counters_and_gauges() {
        let mut t = Telemetry::new(100);
        t.count("pipeline.problems", 2);
        t.count("pipeline.problems", 3);
        t.count("noop", 0);
        t.gauge("pipeline.issue_interval_tau", 96);
        t.gauge("pipeline.issue_interval_tau", 97);
        assert_eq!(t.counter("pipeline.problems"), 5);
        assert_eq!(t.counter("absent"), 0);
        assert_eq!(t.counters().count(), 1, "zero deltas create nothing");
        assert_eq!(t.gauge_value("pipeline.issue_interval_tau"), Some(97));
    }

    #[test]
    fn snapshots_fire_on_cadence_boundaries_only() {
        let mut t = Telemetry::new(100);
        t.count("x", 1);
        t.tick(BitTime::new(50)); // before the first boundary
        assert!(t.snapshots().is_empty());
        t.tick(BitTime::new(120));
        assert_eq!(t.snapshots().len(), 1);
        assert_eq!(t.snapshots()[0].counters["x"], 1);
        t.count("x", 4);
        t.tick(BitTime::new(130)); // same cadence window: no new row
        assert_eq!(t.snapshots().len(), 1);
        t.tick(BitTime::new(250));
        assert_eq!(t.snapshots().len(), 2);
        assert_eq!(t.snapshots()[1].counters["x"], 5);
    }

    #[test]
    fn snapshot_series_is_bounded_by_thinning() {
        let mut t = Telemetry::new(1);
        for at in 1..=10_000u64 {
            t.count("ev", 1);
            t.tick(BitTime::new(at));
        }
        assert!(t.snapshots().len() <= MAX_SNAPSHOTS);
        assert!(t.interval() > 1, "cadence doubled under pressure");
        let ats: Vec<u64> = t.snapshots().iter().map(|s| s.at.get()).collect();
        assert!(ats.windows(2).all(|w| w[0] <= w[1]), "still time-ordered");
        let evs: Vec<u64> = t.snapshots().iter().map(|s| s.counters["ev"]).collect();
        assert!(evs.windows(2).all(|w| w[0] <= w[1]), "still monotone");
    }

    #[test]
    fn open_metrics_renders_all_three_types() {
        let mut t = Telemetry::new(100);
        t.count("engine.delivered", 12);
        t.gauge("engine.links", 4);
        for v in 1..=100u64 {
            t.observe("pipeline.completion_tau", v);
        }
        let om = t.open_metrics();
        assert!(om.contains("# TYPE engine_delivered counter"));
        assert!(om.contains("engine_delivered_total 12"));
        assert!(om.contains("# TYPE engine_links gauge\nengine_links 4"));
        assert!(om.contains("# TYPE pipeline_completion_tau summary"));
        assert!(om.contains("pipeline_completion_tau{quantile=\"0.5\"}"));
        assert!(om.contains("pipeline_completion_tau_count 100"));
        assert!(om.contains("pipeline_completion_tau_sum 5050"));
        assert!(om.ends_with("# EOF\n"));
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(metric_name("pipeline.completion_tau"), "pipeline_completion_tau");
        assert_eq!(metric_name("9lives"), "_9lives");
        assert_eq!(metric_name("a-b c"), "a_b_c");
        assert_eq!(metric_name(""), "_");
    }

    #[test]
    fn json_document_round_trips_and_validates() {
        let mut t = Telemetry::new(50);
        for v in 0..200u64 {
            t.count("ev", 1);
            t.observe("lat", v * 3);
            t.tick(BitTime::new(v * 5));
        }
        t.gauge("links", 7);
        let doc = t.to_json();
        assert!(schema_violations(&doc).is_empty(), "{:?}", schema_violations(&doc));
        let back = Json::parse(&doc.render()).expect("rendered document parses");
        assert!(schema_violations(&back).is_empty());
        assert_eq!(back.get("schema").and_then(Json::as_str), Some(SCHEMA));
    }

    #[test]
    fn schema_violations_flag_corruptions() {
        let mut t = Telemetry::new(50);
        t.count("ev", 3);
        for v in 1..=50u64 {
            t.observe("lat", v);
        }
        t.tick(BitTime::new(60));
        let clean = t.to_json();
        assert!(schema_violations(&clean).is_empty());

        // Wrong schema tag.
        let mut doc = clean.clone();
        doc.set("schema", Json::str("orthotrees-telemetry/v0"));
        assert!(!schema_violations(&doc).is_empty());

        // Non-monotone sketch quantiles.
        let bad_sketch = Json::obj([
            ("name", Json::str("lat")),
            ("count", Json::u64(50)),
            ("min", Json::u64(1)),
            ("max", Json::u64(50)),
            ("mean", Json::f64(25.0)),
            ("p50", Json::u64(40)),
            ("p90", Json::u64(10)),
            ("p99", Json::u64(50)),
        ]);
        let mut doc = clean.clone();
        doc.set("sketches", Json::arr([bad_sketch]));
        let v = schema_violations(&doc);
        assert!(v.iter().any(|m| m.contains("not monotone")), "{v:?}");

        // A decreasing counter across snapshot rows.
        let rows = Json::arr([
            Json::obj([("at", Json::u64(10)), ("counters", Json::obj([("ev", Json::u64(5))]))]),
            Json::obj([("at", Json::u64(20)), ("counters", Json::obj([("ev", Json::u64(3))]))]),
        ]);
        let mut doc = clean;
        doc.set("snapshots", rows);
        let v = schema_violations(&doc);
        assert!(v.iter().any(|m| m.contains("decreased")), "{v:?}");
    }
}
