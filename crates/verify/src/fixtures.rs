//! Firing fixtures: one minimal corruption per catalogue rule id.
//!
//! A rule that never fires is indistinguishable from a rule that is wired
//! to nothing — [`crate::mutate`] proves that for the netlist rules, the
//! [`crate::dflow::DflowMutation`] matrix for the dataflow rules, and this
//! module closes the gap for everything else: [`firing_fixture`] maps
//! *every* id in [`crate::diag::RULES`] to a deterministic corruption
//! whose lint must contain that id. The meta-test at the bottom iterates
//! the whole catalogue, so adding a rule without a firing fixture fails
//! the suite — no rule can be registered vacuously.

use crate::dflow::DflowMutation;
use crate::diag::Report;
use crate::mutate::{lint_mutated, Mutation};
use crate::{ckpt, critpath, determinism, eng, schedule, words};
use orthotrees::obs::causal::{CausalTrace, Hop, MsgId};
use orthotrees::obs::json::Json;
use orthotrees::obs::profile::{Profiler, Window};
use orthotrees::obs::telemetry::QuantileSketch;
use orthotrees::otc::Otc;
use orthotrees_layout::{Chip, ComponentKind, Rect};
use orthotrees_sim::experiments;
use orthotrees_vlsi::tree::level_wire_lengths;
use orthotrees_vlsi::{BitTime, CostKind, CostModel, DelayModel};

fn netlist_fixture(m: Mutation) -> Report {
    lint_mutated(m, 16, 5)
}

fn dflow_fixture(m: DflowMutation) -> Report {
    m.fired()
}

fn synthetic_hop(msg: u64, pred: Option<u64>, t: [u64; 4], link: usize, delivered: bool) -> Hop {
    Hop {
        msg: MsgId(msg),
        pred: pred.map(MsgId),
        link,
        link_len: 4,
        trigger_at: BitTime::new(t[0]),
        ready: BitTime::new(t[1]),
        enter: BitTime::new(t[2]),
        arrive: BitTime::new(t[3]),
        delivered,
    }
}

/// A report in which catalogue rule `id` fires — the canonical minimal
/// corruption for that rule.
///
/// # Panics
///
/// Panics on an id that is not in the catalogue: the caller is expected
/// to iterate [`crate::diag::RULES`], so an unknown id is a bug in the
/// caller, not a reportable condition.
pub fn firing_fixture(id: &str) -> Report {
    let mut report = Report::new();
    match id {
        // Netlist corruption classes (the mutation harness).
        "NET-001" => return netlist_fixture(Mutation::SwapPorts),
        "NET-002" => return netlist_fixture(Mutation::DangleLink),
        "NET-003" => return netlist_fixture(Mutation::FanoutOverload),
        "NET-004" => return netlist_fixture(Mutation::SelfLoop),
        "NET-005" => return netlist_fixture(Mutation::DuplicateLink),
        "TREE-001" => return netlist_fixture(Mutation::KillSubtree),
        "TREE-002" => return netlist_fixture(Mutation::DropLink),
        "TREE-003" => return netlist_fixture(Mutation::StretchWire),
        // Dataflow corruption classes.
        "DFLOW-001" => return dflow_fixture(DflowMutation::DropInit),
        "DFLOW-002" => return dflow_fixture(DflowMutation::SpuriousWrite),
        "DFLOW-003" => return dflow_fixture(DflowMutation::DuplicateWrite),
        "DFLOW-004" => return dflow_fixture(DflowMutation::WidthTamper),
        "DFLOW-005" => return dflow_fixture(DflowMutation::PhantomReach),
        // Schedule rules.
        "SCHED-001" => {
            // Issue a stream faster than one word-length apart: entrances
            // collide on the root link.
            let m = CostModel::thompson(64);
            let levels = level_wire_lengths(64, m.leaf_pitch());
            let s = schedule::stream_schedule(&levels, m.word_bits, m.delay, 4, 1);
            report.extend(schedule::lint_conflicts("fixture", &s));
        }
        "SCHED-002" => {
            // A 4096-word stream completes linearly in the word count,
            // far past any single tree primitive's O(log² N) budget.
            let m = CostModel::thompson(16);
            let levels = level_wire_lengths(16, m.leaf_pitch());
            let s = schedule::stream_schedule(
                &levels,
                m.word_bits,
                m.delay,
                4096,
                m.pipeline_interval().get(),
            );
            report.extend(schedule::lint_budget("fixture", &s, 16, m.word_bits, m.delay));
        }
        "SCHED-003" => {
            let m = CostModel::thompson(16);
            let mut levels = level_wire_lengths(16, m.leaf_pitch());
            levels[2] *= 5;
            let s = schedule::broadcast_schedule(&levels, m.word_bits, m.delay);
            let charged = m.tree_root_to_leaf(16, m.leaf_pitch());
            report.extend(schedule::lint_against_model("fixture", &s, charged));
        }
        // Convention and layout rules.
        "OTN-001" => report.extend(words::lint_otn_shape("fixture", 3, 4, 4, 7)),
        "OTN-002" => report.extend(words::lint_otn_shape("fixture", 4, 4, 4, 1)),
        "OTC-001" => {
            // 64 = 8·8 is a legal Otc but not dims_for(64) = (16, 4).
            let net = Otc::new(8, 8, CostModel::thompson(64)).expect("legal OTC");
            report.extend(words::lint_otc(&net));
        }
        "OTC-002" => report.extend(words::lint_otc_shape("fixture", 16, 4, 6, 1)),
        "AREA-001" => report.extend(words::lint_layout(3, 4)),
        "GEO-001" => {
            let mut chip = Chip::new("fixture");
            chip.place(ComponentKind::Base, Rect::new(0, 0, 4, 4));
            chip.place(ComponentKind::Internal, Rect::new(2, 2, 4, 4));
            report.extend(words::lint_chip_overlap("fixture", &chip));
        }
        // Determinism and checkpoint rules.
        "ENG-001" => {
            // An impure builder — FIFO ties for the heap run, LIFO for the
            // ladder run — permutes same-τ deliveries between the two
            // engines, exactly the sequence divergence a broken calendar
            // would produce.
            let m = CostModel::thompson(8);
            let flip = std::cell::Cell::new(false);
            report.extend(eng::check_identity("fixture", |cal| {
                let e = experiments::probe_engine(
                    experiments::ProbeKind::Stream,
                    8,
                    &m,
                    cal,
                    None,
                    false,
                );
                if flip.replace(true) {
                    e.with_lifo_ties()
                } else {
                    e
                }
            }));
        }
        "DET-001" => report.extend(determinism::check_commutes("fixture", |lifo| {
            determinism::fan_in(
                DelayModel::Logarithmic,
                3,
                8,
                Box::new(determinism::FirstWins::new()),
                lifo,
            )
        })),
        "CKPT-001" => report.extend(ckpt::check_roundtrip("fixture", || {
            determinism::fan_in(
                DelayModel::Logarithmic,
                3,
                8,
                Box::new(ckpt::ForgetfulSink::new()),
                false,
            )
        })),
        "CKPT-002" => {
            // `other` builds the *same* shape, so the mismatch probe must
            // notice the snapshot restoring where it should not.
            let build = || {
                determinism::fan_in(
                    DelayModel::Logarithmic,
                    2,
                    8,
                    Box::new(determinism::or_sink()),
                    false,
                )
            };
            report.extend(ckpt::check_format("fixture", build, build));
        }
        // Causal-trace rules.
        "CRIT-001" => {
            let m = CostModel::thompson(16);
            let (_, trace) = experiments::broadcast_traced(16, &m).expect("traced broadcast");
            // Lint the logarithmic-delay trace against the constant-delay
            // closed forms: the per-level slices cannot match.
            let wrong = CostModel::constant_delay(16);
            report.extend(critpath::lint_roottoleaf("fixture", &trace, &wrong, 16));
        }
        "CRIT-002" => {
            // Hop 1 arrives at t=4 but hop 2 claims its trigger arrived
            // at t=6: a 2τ hole nothing accounts for.
            let mut tr = CausalTrace::new();
            tr.record_hop(synthetic_hop(1, None, [0, 0, 0, 4], 0, true));
            tr.record_hop(synthetic_hop(2, Some(1), [6, 6, 6, 9], 1, true));
            report.extend(critpath::lint_trace("fixture", &tr));
        }
        "CRIT-003" => {
            let mut tr = CausalTrace::new();
            tr.record_hop(synthetic_hop(1, None, [0, 0, 0, 4], 0, false));
            report.extend(critpath::lint_trace("fixture", &tr));
        }
        // Registry and profiler rules.
        "PRIM-001" => {
            let m = CostModel::thompson(16);
            // Corrupt the pricer: Send drawn from the aggregate form
            // instead of the leaf-to-root form.
            report.extend(crate::primitive::lint_costs_with(
                "fixture",
                &m,
                |kind, leaves, pitch, cycle| match kind {
                    CostKind::Send => m.tree_aggregate(leaves, pitch),
                    _ => m.primitive_cost(kind, leaves, pitch, cycle),
                },
            ));
        }
        "PROF-001" => {
            let m = CostModel::thompson(16);
            let (_, rec, prof) =
                experiments::broadcast_profiled(16, &m).expect("profiled broadcast");
            let mut windows = prof.windows().to_vec();
            let busy = windows
                .iter()
                .position(|w| w.events > 0 && w.link_bits > 0)
                .expect("active window");
            windows[busy].events -= 1;
            windows[busy].link_bits -= 1;
            let tampered = Profiler::from_windows(prof.width(), windows);
            report.extend(crate::profile::check_engine_tiling("fixture", &tampered, &rec));
        }
        "PROF-002" => {
            let w0 = Window { index: 0, events: 1, ..Window::default() };
            let w2 = Window { index: 2, events: 1, ..Window::default() };
            let prof = Profiler::from_windows(8, vec![w0, w2]);
            report.extend(crate::profile::check_windows("fixture", &prof));
        }
        // Telemetry rules.
        "TEL-001" => {
            // A sketch fed values 100 larger than the recorded samples:
            // every reported quantile escapes the exact ε rank band.
            let mut sk = QuantileSketch::new(0.01);
            let samples: Vec<u64> = (1..=200).collect();
            for &s in &samples {
                sk.observe(s + 100);
            }
            report.extend(crate::telemetry::check_sketch("fixture", &sk, &samples));
        }
        "TEL-002" => {
            // A clean black-box broadcast dump with a middle tail entry
            // removed: the remaining seqs are no longer contiguous.
            let m = CostModel::thompson(16);
            let (t, log, _tel, mut fl) =
                experiments::broadcast_black_box(16, &m).expect("black-box broadcast");
            let mut dump = fl.dump("export", t, &[]);
            let mut tail = dump.get("tail").and_then(Json::as_arr).expect("tail array").to_vec();
            tail.remove(tail.len() / 2);
            dump.set("tail", Json::arr(tail));
            report.extend(crate::telemetry::check_flight_dump("fixture", &dump, &log));
        }
        other => panic!("no firing fixture for catalogue rule {other:?}"),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::RULES;

    #[test]
    fn every_catalogue_rule_fires_on_its_fixture() {
        for rule in RULES {
            let report = firing_fixture(rule.id);
            assert!(
                report.has(rule.id),
                "{} has a fixture that does not fire it: {}",
                rule.id,
                report.render_text()
            );
        }
    }

    #[test]
    fn fixtures_reject_unknown_ids() {
        let err = std::panic::catch_unwind(|| firing_fixture("NOPE-999"));
        assert!(err.is_err(), "unknown ids must panic, not return an empty report");
    }
}
