//! Regenerates Table III — connected components — and its MST companion
//! (§III.B / §VI.B prose). Mesh, OTN and the direct OTC implementations
//! measured; PSN/CCC analytic.

use orthotrees_analysis::report;
use orthotrees_bench::preset_from_env;

fn main() {
    let cfg = preset_from_env().config();
    let table = report::table3(&cfg);
    print!("{}", table.render());
    print!("{}", report::ranking_check(&table));
    println!();
    let mst = report::table3_mst(&cfg);
    print!("{}", mst.render());
    print!("{}", report::ranking_check(&mst));
}
