//! `telemetry` — regenerate and schema-check the telemetry artifacts.
//!
//! ```text
//! telemetry [--full]
//! ```
//!
//! Runs the stock pipeline-SLO batch (1024 problems under `--full`, 256
//! otherwise), prints the throughput / completion-quantile summary line,
//! and writes the schema-checked exports to `target/report/`:
//! `telemetry.json` (`orthotrees-telemetry/v1`) and `telemetry.om`
//! (OpenMetrics text). Exits nonzero if the run fails, either artifact
//! fails its in-process schema check, or a write fails — CI runs this
//! after the test suite, so a drifted exporter fails the build.

use orthotrees_bench::{export, preset_from_env, Preset};
use std::fs;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let preset = preset_from_env();
    let cfg = preset.config();
    let problems = match preset {
        Preset::Quick => 256,
        Preset::Full => 1024,
    };

    let art = match export::telemetry_artifacts(64, problems, cfg.seed) {
        Ok(art) => art,
        Err(errs) => {
            for e in &errs {
                eprintln!("telemetry: {e}");
            }
            return ExitCode::FAILURE;
        }
    };
    println!("{}", art.summary_line());

    let dir = Path::new("target/report");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("telemetry: could not create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for (name, text) in [("telemetry.json", &art.json), ("telemetry.om", &art.open_metrics)] {
        let path = dir.join(name);
        if let Err(e) = fs::write(&path, text) {
            eprintln!("telemetry: could not write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
