//! Cross-crate integration tests: the conventions that crates share —
//! layout pitches, OTC decompositions, cost formulas vs the bit-level
//! event simulator — must agree, and every parallel algorithm must agree
//! with every other implementation of the same problem.

use orthotrees::otc::Otc;
use orthotrees::otn::{self, Otn};
use orthotrees::CostModel;
use orthotrees_analysis::workloads;
use orthotrees_baselines::{ccc::Ccc, mesh, psn::Psn, seq};
use orthotrees_layout::otc::{otc_dims, OtcLayout};
use orthotrees_layout::otn::OtnLayout;
use orthotrees_sim::experiments;

#[test]
fn core_and_layout_agree_on_otc_decomposition() {
    for k in 2..=14u32 {
        let n = 1usize << k;
        assert_eq!(Otc::dims_for(n).unwrap(), otc_dims(n).unwrap(), "OTC dims diverge at n={n}");
    }
}

#[test]
fn core_pitch_matches_layout_pitch() {
    for n in [4usize, 16, 64] {
        let net = Otn::for_sorting(n).unwrap();
        let layout = OtnLayout::with_default_word(n).unwrap();
        assert_eq!(net.pitch(), layout.pitch(), "pitch convention diverges at n={n}");
    }
}

#[test]
fn event_simulator_validates_the_cost_model_at_network_pitch() {
    // The costs the OTN charges are exactly what the bit-level event
    // simulation of the same tree measures.
    for n in [4usize, 16, 64] {
        let net = Otn::for_sorting(n).unwrap();
        let model = *net.model();
        let simulated =
            experiments::broadcast_completion_time(n, &with_pitch(model, net.pitch())).unwrap();
        assert_eq!(
            simulated,
            model.tree_root_to_leaf(n, net.pitch()),
            "broadcast cost diverges at n={n}"
        );
        let values: Vec<u64> = (0..n as u64).map(|v| v % (1 << model.word_bits)).collect();
        let (t, sum) =
            experiments::sum_completion_time(&values, &with_pitch(model, net.pitch())).unwrap();
        assert_eq!(sum, values.iter().sum::<u64>());
        assert_eq!(t, model.tree_aggregate(n, net.pitch()), "sum cost diverges at n={n}");
    }
}

fn with_pitch(model: CostModel, pitch: u64) -> CostModel {
    CostModel { pitch, ..model }
}

#[test]
fn all_five_sorting_networks_agree() {
    let n = 64;
    for seed in [1u64, 2, 3] {
        let xs = workloads::distinct_words(n, seed);
        let expect = seq::sorted(&xs);

        let mut otn = Otn::for_sorting(n).unwrap();
        assert_eq!(otn::sort::sort(&mut otn, &xs).unwrap().sorted, expect, "OTN");

        let mut otc = Otc::for_sorting(n).unwrap();
        assert_eq!(orthotrees::otc::sort::sort(&mut otc, &xs).unwrap().sorted, expect, "OTC");

        let mut m = mesh::Mesh::for_sorting(n).unwrap();
        assert_eq!(mesh::sort::shear_sort(&mut m, &xs).unwrap().sorted, expect, "mesh");

        let mut p = Psn::new(n).unwrap();
        assert_eq!(p.sort(&xs).unwrap().sorted, expect, "PSN");

        let mut c = Ccc::new(n).unwrap();
        assert_eq!(c.sort(&xs).unwrap().sorted, expect, "CCC");
    }
}

#[test]
fn bitonic_sort_agrees_with_rank_sort_on_shared_inputs() {
    let k = 8; // bitonic sorts k² elements; rank sort sorts k.
    let xs = workloads::duplicated_words(k * k, 5);
    let mut net = Otn::for_sorting(k).unwrap();
    let bitonic = otn::bitonic::bitonic_sort(&mut net, &xs).unwrap().sorted;
    assert_eq!(bitonic, seq::sorted(&xs));
}

#[test]
fn connected_components_agree_across_implementations() {
    for (n, p, seed) in [(16usize, 0.15, 1u64), (32, 0.08, 2), (64, 0.04, 3)] {
        let adj = workloads::gnp_adjacency(n, p, seed);
        let edges = workloads::edges_of(&adj);
        let reference = seq::components(n, &edges);

        let otn_out = otn::graph::cc::connected_components(&adj).unwrap();
        assert_eq!(otn_out.labels, reference, "OTN CC, n={n}");

        let rows = workloads::grid_to_rows(&adj);
        let mesh_out = mesh::closure::connected_components(&rows).unwrap();
        assert_eq!(mesh_out.labels, reference, "mesh CC, n={n}");

        // The transitive closure also induces the same components: v's
        // component = min reachable vertex.
        let closure = otn::graph::closure::transitive_closure(&adj).unwrap();
        for (v, &label) in reference.iter().enumerate() {
            let min_reach =
                (0..n).filter(|&u| *closure.reach.get(v, u) != 0).min().expect("v reaches itself");
            assert_eq!(min_reach as i64, label, "closure CC, n={n}, v={v}");
        }
    }
}

#[test]
fn mst_agrees_with_kruskal_on_random_graphs() {
    for (n, seed) in [(16usize, 10u64), (32, 11), (64, 12)] {
        let weights = workloads::random_weights(n, 3.0 / n as f64, 200, seed);
        let wedges = workloads::weighted_edges_of(&weights);
        let out = otn::graph::mst::minimum_spanning_tree(&weights).unwrap();
        let (ref_w, ref_e) = seq::kruskal(n, &wedges);
        assert_eq!(out.total_weight, ref_w, "n={n}");
        assert_eq!(out.edges.len(), ref_e, "n={n}");
    }
}

#[test]
fn matmul_agrees_between_otn_and_mesh() {
    let n = 8;
    let a = workloads::random_bool_matrix(n, 0.4, 20);
    let b = workloads::random_bool_matrix(n, 0.4, 21);

    let wide = otn::matmul::bool_matmul_wide(&a, &b).unwrap();
    let rows_a = workloads::grid_to_rows(&a);
    let rows_b = workloads::grid_to_rows(&b);
    let cannon = mesh::matmul::cannon_bool_matmul(&rows_a, &rows_b).unwrap();
    let reference = seq::bool_matmul(&rows_a, &rows_b);
    for (i, ref_row) in reference.iter().enumerate() {
        for (j, &ref_bit) in ref_row.iter().enumerate() {
            assert_eq!(*wide.c.get(i, j), ref_bit, "wide ({i},{j})");
            assert_eq!(cannon.c[i][j], ref_bit, "cannon ({i},{j})");
        }
    }
}

#[test]
fn layout_areas_feed_the_sweeps_consistently() {
    // The area a sorting sweep reports is exactly the layout crate's
    // prediction, which in turn equals the constructed chip (tested in the
    // layout crate).
    let sweeps = orthotrees_analysis::sweep::sort_otn(&[16, 64], 1, false);
    for s in &sweeps.samples {
        assert_eq!(s.area, OtnLayout::predicted_area_default(s.n));
    }
    let otc_sweep = orthotrees_analysis::sweep::sort_otc(&[16, 64], 1);
    for s in &otc_sweep.samples {
        let (m, l) = otc_dims(s.n).unwrap();
        let w = orthotrees_vlsi::log2_ceil(s.n as u64).max(1);
        assert_eq!(s.area, OtcLayout::predicted_area(m, l, w));
    }
}
