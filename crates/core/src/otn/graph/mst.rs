//! Minimum spanning tree in `Θ(log⁴ N)` (paper §III.B).
//!
//! Borůvka/Sollin phases over the weight matrix: each phase, every
//! component finds its minimum-weight outgoing edge (a `MIN-LEAFTOLEAF`
//! per tree family, with the weight *packed* with the edge id so the
//! minimum carries its argmin — see [`crate::pack`]), the chosen edges are
//! emitted, components hook along them (2-cycles broken towards the smaller
//! label — with packed-distinct weights no longer cycles can form), and
//! `⌈log₂ N⌉` pointer jumps flatten the merged components. The number of
//! components at least halves per phase, so `O(log N)` phases suffice; each
//! phase is `O(log N)` tree primitives of `Θ(log² N)` — `Θ(log⁴ N)` total,
//! with the extra `log N` of on-chip weight storage showing up in the area
//! (paper §VI.B: "the area goes down to O(N² log N) … because the entire
//! N × N weight matrix must be stored on the chip").

use super::super::{all, Axis, Otn, PhaseCost};
use super::Labels;
use crate::grid::Grid;
use crate::word::{pack, unpack, Word};
use orthotrees_vlsi::{log2_ceil, BitTime, CostModel, ModelError, OpStats};
use std::collections::HashSet;

/// Result of a minimum-spanning-tree run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MstOutcome {
    /// Chosen edges `(u, v, weight)` with `u < v` — a minimum spanning
    /// forest if the graph is disconnected.
    pub edges: Vec<(usize, usize, Word)>,
    /// Sum of the chosen edges' weights.
    pub total_weight: Word,
    /// Simulated time.
    pub time: BitTime,
    /// Borůvka phases used (expected `O(log N)`).
    pub phases: u32,
    /// Primitive-operation counts.
    pub stats: OpStats,
}

/// Computes a minimum spanning forest of the undirected weighted graph
/// whose weight matrix is `weights` (`None` = no edge; weights must be
/// non-negative and the matrix symmetric).
///
/// # Errors
///
/// Returns [`ModelError`] if the matrix is not square with a power-of-two
/// side.
///
/// # Panics
///
/// Panics if the matrix is asymmetric, a weight is negative, or the phase
/// count exceeds `2·log₂ N + 4`.
pub fn minimum_spanning_tree(weights: &Grid<Option<Word>>) -> Result<MstOutcome, ModelError> {
    let n = weights.rows();
    ModelError::require_equal("weight matrix sides", n, weights.cols())?;
    ModelError::require_power_of_two("vertex count", n)?;
    let mut max_w: Word = 0;
    for (i, j, v) in weights.iter() {
        assert_eq!(*v, *weights.get(j, i), "weight matrix must be symmetric at ({i},{j})");
        if let Some(w) = v {
            assert!(*w >= 0, "weights must be non-negative, got {w} at ({i},{j})");
            max_w = max_w.max(*w);
        }
    }

    // Word width: packed (weight, edge-id) pairs. edge-id ∈ 0..n².
    let weight_bits = log2_ceil(max_w as u64 + 1).max(1);
    let wbits = weight_bits + 2 * log2_ceil(n as u64).max(1) + 2;
    let mut net = Otn::new(n, n, CostModel::thompson(n).with_word_bits(wbits))?;

    let wreg = net.alloc_reg("W");
    net.load_reg(wreg, |i, j| *weights.get(i, j));
    let labels = Labels::init(&mut net);
    let cand = net.alloc_reg("cand");
    let cmin = net.alloc_reg("cmin");
    let compmin = net.alloc_reg("compmin");
    let cmrow = net.alloc_reg("cmrow");
    let hookval = net.alloc_reg("hook");
    let lreg = net.alloc_reg("L");
    let lrow = net.alloc_reg("Lrow");
    let lcol = net.alloc_reg("Lcol2");
    let llreg = net.alloc_reg("LL");
    let have = net.alloc_reg("have");
    let havecnt = net.alloc_reg("havecnt");

    let mut edges: HashSet<(usize, usize)> = HashSet::new();
    let mut edge_list: Vec<(usize, usize, Word)> = Vec::new();
    let mut total_weight: Word = 0;
    let mut phases = 0u32;
    let max_phases = 2 * log2_ceil(n as u64).max(1) + 4;
    let nn = n;

    let stats_before = *net.clock().stats();
    let (_, time) = net.elapsed(|net| loop {
        phases += 1;
        assert!(phases <= max_phases, "MST failed to converge within {max_phases} phases");
        labels.refresh(net);
        // 1) candidate outgoing edges, packed (weight, normalised edge id
        //    min(i,j)·n + max(i,j)). The NORMALISED id is load-bearing: with
        //    duplicate weights, two components joined by two equal-weight
        //    edges would otherwise each pick a *different* edge (each
        //    minimising over its own orientation's id) and the pair of
        //    picks would close a cycle. With one canonical id per edge,
        //    both sides of a tie pick the same edge and the 2-cycle hook
        //    resolution below merges them with exactly one edge.
        let (drow, dcol) = (labels.drow, labels.dcol);
        net.bp_phase(PhaseCost::Words(2), move |i, j, bp| {
            let c = match (bp.get(wreg), bp.get(drow), bp.get(dcol)) {
                (Some(w), Some(dv), Some(du)) if dv != du => {
                    Some(pack(w, i.min(j) * nn + i.max(j), nn * nn))
                }
                _ => None,
            };
            bp.set(cand, c);
        });
        // 2) per-vertex best, known everywhere in the row.
        net.min_to_leaf(Axis::Rows, cand, all, cmin, all);
        // 3) per-component best, landing at the component root's diagonal.
        net.min_to_leaf(
            Axis::Cols,
            cmin,
            move |i, j, v| v.get(drow, i, j) == Some(j as Word),
            compmin,
            |i, j, _| i == j,
        );
        // 4) termination: any component with an outgoing edge left?
        net.bp_phase(PhaseCost::Bit, |i, j, bp| {
            let f = i == j && bp.get(compmin).is_some();
            bp.set(have, Some(Word::from(f)));
        });
        net.count_to_leaf(Axis::Cols, have, havecnt, |i, _, _| i == 0);
        net.count_to_root(Axis::Rows, havecnt);
        if net.roots(Axis::Rows)[0] == Some(0) {
            break;
        }
        // 5) emit the chosen edges through the column roots.
        net.leaf_to_root(Axis::Cols, compmin, |i, j, _| i == j);
        let chosen: Vec<Option<Word>> = net.roots(Axis::Cols).to_vec();
        for packed in chosen.into_iter().flatten() {
            let (w, eid) = unpack(packed, nn * nn);
            let (v, u) = (eid / nn, eid % nn);
            let key = (v.min(u), v.max(u));
            if edges.insert(key) {
                edge_list.push((key.0, key.1, w));
                total_weight += w;
            }
        }
        // 6) hooking: component w's new parent is the *other side's* label
        //    D(u). The normalised edge id no longer says which endpoint is
        //    outside, but the outside endpoint is recognisable on-network:
        //    it is the one whose column label differs from this row's
        //    component label.
        net.leaf_to_leaf(Axis::Rows, compmin, |i, j, _| i == j, cmrow, all);
        net.bp_phase(PhaseCost::Words(2), move |_, j, bp| {
            let h = match (bp.get(cmrow), bp.get(drow), bp.get(dcol)) {
                (Some(p), Some(dv), Some(du)) => {
                    let (_, eid) = unpack(p, nn * nn);
                    let is_endpoint = eid % nn == j || eid / nn == j;
                    if is_endpoint && du != dv {
                        Some(du) // D(outside endpoint)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            bp.set(hookval, h);
        });
        net.min_to_leaf(Axis::Rows, hookval, all, lreg, |i, j, _| i == j);
        // 7) break 2-cycles: fetch LL(w) = L(L(w)); if LL(w) = w, the
        //    smaller label becomes the root.
        net.leaf_to_leaf(Axis::Rows, lreg, |i, j, _| i == j, lrow, all);
        net.leaf_to_leaf(Axis::Cols, lreg, |i, j, _| i == j, lcol, all);
        net.leaf_to_leaf(
            Axis::Rows,
            lcol,
            move |i, j, v| v.get(lrow, i, j) == Some(j as Word),
            llreg,
            |i, j, _| i == j,
        );
        let d = labels.d;
        net.bp_phase(PhaseCost::Compare, move |i, j, bp| {
            if i != j {
                return;
            }
            match (bp.get(lreg), bp.get(llreg)) {
                (Some(l), Some(ll)) if ll == i as Word => {
                    bp.set(d, Some(l.min(i as Word)));
                }
                (Some(l), _) => bp.set(d, Some(l)),
                (None, _) => {}
            }
        });
        // 8) flatten.
        labels.shortcut(net);
    });

    edge_list.sort_unstable();
    let stats = net.clock().stats().since(&stats_before);
    Ok(MstOutcome { edges: edge_list, total_weight, time, phases, stats })
}

/// Kruskal reference (host-side): returns the minimum spanning forest's
/// total weight and edge count.
pub fn reference_mst_weight(weights: &Grid<Option<Word>>) -> (Word, usize) {
    let n = weights.rows();
    let mut edges: Vec<(Word, usize, usize)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if let Some(w) = weights.get(i, j) {
                edges.push((*w, i, j));
            }
        }
    }
    edges.sort_unstable();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    let mut total = 0;
    let mut count = 0;
    for (w, i, j) in edges {
        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
        if ri != rj {
            parent[ri.max(rj)] = ri.min(rj);
            total += w;
            count += 1;
        }
    }
    (total, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_edges(n: usize, edges: &[(usize, usize, Word)]) -> Grid<Option<Word>> {
        let mut g = Grid::filled(n, n, None);
        for &(u, v, w) in edges {
            g.set(u, v, Some(w));
            g.set(v, u, Some(w));
        }
        g
    }

    fn check(n: usize, edges: &[(usize, usize, Word)]) -> MstOutcome {
        let weights = from_edges(n, edges);
        let out = minimum_spanning_tree(&weights).unwrap();
        let (ref_weight, ref_count) = reference_mst_weight(&weights);
        assert_eq!(out.total_weight, ref_weight, "edges: {edges:?}");
        assert_eq!(out.edges.len(), ref_count, "edges: {edges:?}");
        // The reported edges must form a forest of the right weight over
        // existing edges.
        for &(u, v, w) in &out.edges {
            assert_eq!(*weights.get(u, v), Some(w), "({u},{v}) not a graph edge");
        }
        out
    }

    #[test]
    fn triangle_drops_heaviest_edge() {
        let out = check(4, &[(0, 1, 1), (1, 2, 2), (0, 2, 3)]);
        assert_eq!(out.edges, vec![(0, 1, 1), (1, 2, 2)]);
    }

    #[test]
    fn empty_graph_has_empty_forest() {
        let out = check(8, &[]);
        assert!(out.edges.is_empty());
        assert_eq!(out.total_weight, 0);
        assert_eq!(out.phases, 1, "one probe phase discovers no edges");
    }

    #[test]
    fn path_and_star() {
        check(8, &(0..7).map(|v| (v, v + 1, (v as Word * 3 + 1) % 7 + 1)).collect::<Vec<_>>());
        check(8, &(1..8).map(|v| (0, v, v as Word)).collect::<Vec<_>>());
    }

    #[test]
    fn disconnected_components_yield_forest() {
        let out = check(8, &[(0, 1, 5), (2, 3, 1), (2, 4, 2), (3, 4, 9)]);
        assert_eq!(out.total_weight, 5 + 1 + 2);
        assert_eq!(out.edges.len(), 3);
    }

    #[test]
    fn duplicate_weights_are_resolved_deterministically() {
        // All weights equal: any spanning tree has weight n−1; the packed
        // tie-break must still terminate and produce a tree.
        let n = 8;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v, 1));
            }
        }
        let out = check(n, &edges);
        assert_eq!(out.total_weight, (n - 1) as Word);
    }

    #[test]
    fn random_weighted_graphs_match_kruskal() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for &n in &[8usize, 16, 32] {
            for density in [0.1, 0.4, 0.9] {
                let mut edges = Vec::new();
                for u in 0..n {
                    for v in (u + 1)..n {
                        if rng.random::<f64>() < density {
                            edges.push((u, v, rng.random_range(0..1000)));
                        }
                    }
                }
                let out = check(n, &edges);
                assert!(out.phases <= log2_ceil(n as u64) + 2, "n={n} took {} phases", out.phases);
            }
        }
    }

    #[test]
    fn phases_are_logarithmic_on_a_long_path() {
        let n = 64;
        let edges: Vec<(usize, usize, Word)> =
            (0..n - 1).map(|v| (v, v + 1, ((v * 7) % 13) as Word)).collect();
        let out = check(n, &edges);
        assert!(out.phases <= 8, "path MST took {} phases", out.phases);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn rejects_asymmetric_weights() {
        let mut g = Grid::filled(4, 4, None);
        g.set(0, 1, Some(3));
        let _ = minimum_spanning_tree(&g);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weights() {
        let mut g = Grid::filled(4, 4, None);
        g.set(0, 1, Some(-3));
        g.set(1, 0, Some(-3));
        let _ = minimum_spanning_tree(&g);
    }

    #[test]
    fn rejects_non_power_of_two() {
        let g: Grid<Option<Word>> = Grid::filled(5, 5, None);
        assert!(minimum_spanning_tree(&g).is_err());
    }
}
