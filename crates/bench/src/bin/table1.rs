//! Regenerates Table I — sorting N numbers under Thompson's
//! logarithmic-delay model — from measured runs of all five networks.

use orthotrees_analysis::report;
use orthotrees_bench::preset_from_env;

fn main() {
    let cfg = preset_from_env().config();
    let table = report::table1(&cfg);
    print!("{}", table.render());
    print!("{}", report::ranking_check(&table));
}
