//! Seeded workload generators. Every experiment is reproducible: the same
//! seed yields the same inputs on every run and platform (`StdRng` is a
//! portable PRNG seeded explicitly).

use orthotrees::Grid;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// A machine word (matches the networks' register type).
pub type Word = i64;

/// `n` distinct pseudo-random words (a permutation of `0..n`, shuffled).
pub fn distinct_words(n: usize, seed: u64) -> Vec<Word> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<Word> = (0..n as Word).collect();
    // Fisher–Yates.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
    v
}

/// `n` words with heavy duplication (values in `0..max(1, n/4)`).
pub fn duplicated_words(n: usize, seed: u64) -> Vec<Word> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hi = (n / 4).max(1) as Word;
    (0..n).map(|_| rng.random_range(0..hi)).collect()
}

/// An Erdős–Rényi `G(n, p)` undirected adjacency matrix (0/1, symmetric,
/// zero diagonal).
pub fn gnp_adjacency(n: usize, p: f64, seed: u64) -> Grid<Word> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Grid::filled(n, n, 0);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < p {
                g.set(u, v, 1);
                g.set(v, u, 1);
            }
        }
    }
    g
}

/// A path graph's adjacency matrix — the adversarial (diameter `n−1`)
/// family for the connected-components convergence claims.
pub fn path_adjacency(n: usize) -> Grid<Word> {
    let mut g = Grid::filled(n, n, 0);
    for v in 0..n.saturating_sub(1) {
        g.set(v, v + 1, 1);
        g.set(v + 1, v, 1);
    }
    g
}

/// A connected random weight matrix: a random spanning path (guaranteeing
/// connectivity) plus `G(n, p)` extra edges; weights in `1..=w_max`,
/// distinct with high probability via the generator.
pub fn random_weights(n: usize, p: f64, w_max: Word, seed: u64) -> Grid<Option<Word>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g: Grid<Option<Word>> = Grid::filled(n, n, None);
    let order = distinct_words(n, seed ^ 0x9E37_79B9);
    let put = |g: &mut Grid<Option<Word>>, u: usize, v: usize, w: Word| {
        g.set(u, v, Some(w));
        g.set(v, u, Some(w));
    };
    for i in 0..n.saturating_sub(1) {
        let w = rng.random_range(1..=w_max);
        put(&mut g, order[i] as usize, order[i + 1] as usize, w);
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if g.get(u, v).is_none() && rng.random::<f64>() < p {
                let w = rng.random_range(1..=w_max);
                put(&mut g, u, v, w);
            }
        }
    }
    g
}

/// A random 0/1 matrix with density `p` (for the Boolean matmul
/// experiments; not necessarily symmetric).
pub fn random_bool_matrix(n: usize, p: f64, seed: u64) -> Grid<Word> {
    let mut rng = StdRng::seed_from_u64(seed);
    Grid::from_fn(n, n, |_, _| Word::from(rng.random::<f64>() < p))
}

/// Converts a `Grid` to the row-major `Vec<Vec<_>>` shape the baselines
/// take.
pub fn grid_to_rows(g: &Grid<Word>) -> Vec<Vec<Word>> {
    (0..g.rows()).map(|i| g.row(i).to_vec()).collect()
}

/// Extracts the edge list `(u, v)` of an adjacency grid (upper triangle).
pub fn edges_of(g: &Grid<Word>) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for (i, j, v) in g.iter() {
        if i < j && *v != 0 {
            edges.push((i, j));
        }
    }
    edges
}

/// Extracts the weighted edge list of a weight grid (upper triangle).
pub fn weighted_edges_of(g: &Grid<Option<Word>>) -> Vec<(usize, usize, Word)> {
    let mut edges = Vec::new();
    for (i, j, v) in g.iter() {
        if i < j {
            if let Some(w) = v {
                edges.push((i, j, *w));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_words_is_a_permutation() {
        let v = distinct_words(64, 1);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<Word>>());
        assert_ne!(v, sorted, "should be shuffled");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(distinct_words(32, 7), distinct_words(32, 7));
        assert_ne!(distinct_words(32, 7), distinct_words(32, 8));
        assert_eq!(gnp_adjacency(16, 0.3, 5), gnp_adjacency(16, 0.3, 5));
    }

    #[test]
    fn gnp_is_symmetric_with_zero_diagonal() {
        let g = gnp_adjacency(16, 0.4, 2);
        for (i, j, v) in g.iter() {
            assert_eq!(*v, *g.get(j, i));
            if i == j {
                assert_eq!(*v, 0);
            }
        }
    }

    #[test]
    fn path_has_n_minus_one_edges() {
        let g = path_adjacency(8);
        assert_eq!(edges_of(&g).len(), 7);
    }

    #[test]
    fn random_weights_are_connected_and_symmetric() {
        let g = random_weights(16, 0.1, 100, 3);
        let edges = weighted_edges_of(&g);
        let labels = orthotrees_baselines::seq::components(
            16,
            &edges.iter().map(|&(u, v, _)| (u, v)).collect::<Vec<_>>(),
        );
        assert!(labels.iter().all(|&l| l == 0), "spanning path guarantees connectivity");
        for (i, j, v) in g.iter() {
            assert_eq!(*v, *g.get(j, i));
        }
    }

    #[test]
    fn bool_matrix_density_tracks_p() {
        let g = random_bool_matrix(32, 0.25, 9);
        let ones: i64 = g.iter().map(|(_, _, v)| *v).sum();
        let frac = ones as f64 / (32.0 * 32.0);
        assert!((0.1..0.4).contains(&frac), "density {frac}");
    }

    #[test]
    fn duplicated_words_have_duplicates() {
        let v = duplicated_words(64, 4);
        let uniq: std::collections::HashSet<_> = v.iter().collect();
        assert!(uniq.len() < v.len());
    }
}
