//! Word-level network and layout lints: OTN/OTC conventions and area
//! cross-checks.
//!
//! The word-level builders ([`Otn`], [`Otc`]) and the geometric layouts
//! (`orthotrees-layout`) encode the same conventions independently — the
//! leaf pitch, the Θ(log N) cycle decomposition, the closed-form areas.
//! These lints re-derive each convention from first principles and flag any
//! component that has drifted: OTN-001/002 for the mesh-of-trees, OTC-001/
//! 002 for the cycle decomposition, AREA-001 for constructed-vs-predicted
//! area, GEO-001 for physical component overlap on the chip.

use crate::diag::Finding;
use orthotrees::otc::Otc;
use orthotrees::otn::Otn;
use orthotrees_layout::otc::{otc_dims, OtcLayout};
use orthotrees_layout::otn::OtnLayout;
use orthotrees_layout::Chip;
use orthotrees_vlsi::log2_ceil;

/// The parameter core of [`lint_otn`]: checks the OTN conventions on bare
/// shape parameters, so both real networks and synthetic (mutated)
/// parameter sets run through the same rules. Power-of-two dimensions is
/// OTN-001; the layout leaf pitch `w + depth + 1` is OTN-002.
pub fn lint_otn_shape(
    name: &str,
    rows: usize,
    cols: usize,
    word_bits: u32,
    pitch: u64,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (axis, dim) in [("rows", rows), ("cols", cols)] {
        if !dim.is_power_of_two() {
            out.push(Finding::new(
                "OTN-001",
                name,
                format!("{axis} = {dim}"),
                "mesh-of-trees dimensions must be powers of two".to_string(),
                "round the problem size up to the next power of two",
            ));
        }
    }
    let depth = log2_ceil(rows.max(cols) as u64);
    let expected = u64::from(word_bits) + u64::from(depth) + 1;
    if pitch != expected {
        out.push(Finding::new(
            "OTN-002",
            name,
            format!("pitch {pitch}"),
            format!("layout convention requires w + depth + 1 = {expected} λ"),
            "the BP pitch must leave room for the register and one tree track per level",
        ));
    }
    out
}

/// Lints a word-level OTN against the paper's conventions: power-of-two
/// dimensions (OTN-001) and the layout leaf pitch `w + depth + 1` (OTN-002).
pub fn lint_otn(net: &Otn) -> Vec<Finding> {
    let name = format!("({}x{})-OTN", net.rows(), net.cols());
    lint_otn_shape(&name, net.rows(), net.cols(), net.model().word_bits, net.pitch())
}

/// The parameter core of [`lint_otc`]: the Θ(log N) decomposition rule
/// (OTC-001) and the cycle-block pitch convention (OTC-002) on bare shape
/// parameters.
pub fn lint_otc_shape(
    name: &str,
    side: usize,
    cycle_len: usize,
    word_bits: u32,
    pitch: u64,
) -> Vec<Finding> {
    let mut out = Vec::new();
    // The canonical decomposition is over the *problem size* n = m · L
    // (the sorting OTC for n keys has m cycles per tree of L BPs each).
    let n = side * cycle_len;
    match Otc::dims_for(n) {
        Ok((m, cycle)) if (m, cycle) == (side, cycle_len) => {}
        Ok((m, cycle)) => out.push(Finding::new(
            "OTC-001",
            name,
            format!("decomposition ({side} , {cycle_len})"),
            format!("problem size {n} decomposes as ({m}, {cycle}) cycles of Θ(log N) BPs"),
            "use Otc::dims_for to split N into m·cycle with cycle = Θ(log N)",
        )),
        Err(e) => out.push(Finding::new(
            "OTC-001",
            name,
            format!("problem size {n}"),
            format!("no valid OTC decomposition: {e}"),
            "OTC problem sizes must be powers of two, at least 4",
        )),
    }
    let depth = log2_ceil(side as u64);
    let block = (2 * cycle_len as u64 - 1).max(u64::from(word_bits) + 1);
    let expected = block + u64::from(depth) + 1;
    if pitch != expected {
        out.push(Finding::new(
            "OTC-002",
            name,
            format!("pitch {pitch}"),
            format!("cycle-block convention requires {expected} λ"),
            "the cycle pitch is the block side (2L−1 or w+1) plus one track per level",
        ));
    }
    out
}

/// Lints a word-level OTC: the cycle length must be the Θ(log N)
/// decomposition [`Otc::dims_for`] prescribes (OTC-001) and the pitch must
/// follow the cycle-block convention (OTC-002).
pub fn lint_otc(net: &Otc) -> Vec<Finding> {
    let name = format!("({m}x{m})-OTC (L={l})", m = net.side(), l = net.cycle_len());
    lint_otc_shape(&name, net.side(), net.cycle_len(), net.model().word_bits, net.pitch())
}

/// Scans one chip for physically overlapping placed components (GEO-001) —
/// the geometric core [`lint_layout`] runs on every constructed layout,
/// callable directly on hand-built chips too.
pub fn lint_chip_overlap(name: &str, chip: &Chip) -> Vec<Finding> {
    match chip.find_component_overlap() {
        Some((a, b)) => vec![Finding::new(
            "GEO-001",
            name,
            format!("components {a} and {b}"),
            "placed components overlap on the chip".to_string(),
            "every BP/IP occupies exclusive area in the strip embedding",
        )],
        None => Vec::new(),
    }
}

/// Cross-checks the constructed layouts for problem size `n` against their
/// closed-form predictions (AREA-001) and scans the chips for physically
/// overlapping components (GEO-001).
///
/// `word_bits` is the register width the OTN layout is built with; the OTC
/// uses the paper's default `⌈log₂ n⌉`.
pub fn lint_layout(n: usize, word_bits: u32) -> Vec<Finding> {
    let mut out = Vec::new();

    match OtnLayout::build(n, word_bits) {
        Ok(layout) => {
            let name = format!("({n}x{n})-OTN layout");
            let predicted = OtnLayout::predicted_area(n, word_bits);
            if layout.area() != predicted {
                out.push(Finding::new(
                    "AREA-001",
                    &name,
                    format!("area {}", layout.area()),
                    format!("closed form predicts {predicted}"),
                    "predicted_area and build must stay in lockstep",
                ));
            }
            out.extend(lint_chip_overlap(&name, layout.chip()));
        }
        Err(e) => out.push(Finding::new(
            "AREA-001",
            format!("({n}x{n})-OTN layout"),
            "build".to_string(),
            format!("layout construction failed: {e}"),
            "lint_layout expects a power-of-two n and nonzero word width",
        )),
    }

    match OtcLayout::for_problem_size(n * n) {
        Ok(layout) => {
            let name = format!("OTC layout for N={}", n * n);
            let predicted = OtcLayout::predicted_area(
                layout.side(),
                layout.cycle_len(),
                layout.word_bits() as u32,
            );
            if layout.area() != predicted {
                out.push(Finding::new(
                    "AREA-001",
                    &name,
                    format!("area {}", layout.area()),
                    format!("closed form predicts {predicted}"),
                    "predicted_area and build must stay in lockstep",
                ));
            }
            out.extend(lint_chip_overlap(&name, layout.chip()));
            // The two crates' decompositions must agree.
            let word_dims = Otc::dims_for(n * n);
            let layout_dims = otc_dims(n * n);
            if word_dims.as_ref().ok() != layout_dims.as_ref().ok() {
                out.push(Finding::new(
                    "OTC-001",
                    &name,
                    "dims_for vs otc_dims".to_string(),
                    format!("word level says {word_dims:?}, layout says {layout_dims:?}"),
                    "the decomposition convention is shared; keep both crates in sync",
                ));
            }
        }
        Err(e) => out.push(Finding::new(
            "AREA-001",
            format!("OTC layout for N={}", n * n),
            "build".to_string(),
            format!("layout construction failed: {e}"),
            "lint_layout expects a power-of-two n ≥ 2",
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthotrees_vlsi::CostModel;

    #[test]
    fn stock_otn_configs_lint_clean() {
        for n in [2usize, 16, 64, 256] {
            assert!(lint_otn(&Otn::for_sorting(n).unwrap()).is_empty(), "sorting n={n}");
        }
        for n in [8usize, 64] {
            assert!(lint_otn(&Otn::for_graphs(n).unwrap()).is_empty(), "graphs n={n}");
        }
        assert!(lint_otn(&Otn::wide(4, 64).unwrap()).is_empty(), "wide 4x64");
    }

    #[test]
    fn stock_otc_configs_lint_clean() {
        for n in [16usize, 64, 256, 1024] {
            assert!(lint_otc(&Otc::for_sorting(n).unwrap()).is_empty(), "n={n}");
        }
    }

    #[test]
    fn non_canonical_otc_decomposition_is_otc001() {
        // 64 = 8·8 is a legal Otc but not dims_for(64) = (16, 4).
        let net = Otc::new(8, 8, CostModel::thompson(64)).unwrap();
        let f = lint_otc(&net);
        assert!(f.iter().any(|f| f.rule == "OTC-001"), "{f:?}");
    }

    #[test]
    fn doctored_pitch_is_otn002() {
        // A model with a different word width shifts the expected pitch; an
        // Otn built normally always matches, so fake the drift by linting a
        // network whose model was widened after construction is impossible —
        // instead check the formula is actually exercised.
        let net = Otn::for_sorting(16).unwrap();
        let depth = log2_ceil(16u64);
        assert_eq!(net.pitch(), u64::from(net.model().word_bits) + u64::from(depth) + 1);
        assert!(lint_otn(&net).is_empty());
    }

    #[test]
    fn stock_layouts_lint_clean() {
        for n in [2usize, 4, 8, 16] {
            let f = lint_layout(n, log2_ceil((n * n) as u64).max(1));
            assert!(f.is_empty(), "n={n}: {f:?}");
        }
    }
}
