//! Word-level fault handling: detection, bounded retry, and graceful
//! degradation for the orthogonal-trees networks.
//!
//! The engine-level fault machinery (`orthotrees_sim::fault`) perturbs
//! individual bits on wires. At the register-transfer level the networks
//! here move whole words, so they consume the same deterministic
//! [`FaultPlan`] through a word-granular lens:
//!
//! * **Injection** — every word transit through a tree (one broadcast copy,
//!   one `LEAFTOROOT` word, one aggregate result, one stream position) may
//!   be dropped, hit by a single bit flip, or hit by a double bit flip,
//!   each drawn as a pure function of `(seed, site, round, attempt)`.
//! * **Detection** — each word carries a parity bit. A drop is caught by
//!   framing (a selected word was expected but never arrived); a single
//!   flip is caught by parity. A *double* flip balances the parity and
//!   passes undetected — the model's honest silent-corruption channel.
//! * **Recovery** — detected faults trigger a retransmission, up to the
//!   plan's retry budget; the extra rounds are charged to the simulated
//!   clock. A word still faulty after the last retry is delivered as an
//!   *erasure* (`NULL`), never as silently wrong data.
//! * **Degradation** — a dead internal processor severs its whole subtree
//!   of leaves. If its sibling subtree is intact the traffic reroutes
//!   through it at a lateral-crossing time penalty; otherwise the leaves go
//!   *dark* and are reported in the [`FaultReport`] instead of aborting the
//!   run.

use crate::otn::Axis;
use crate::word::Word;
use orthotrees_vlsi::log2_ceil;

pub use orthotrees_sim::fault::{DeadIp, FaultPlan, FaultStats, TreeAxis, WordFaultKind};

/// The sentinel leaf index used for whole-tree transit sites (one word per
/// tree: `LEAFTOROOT`, aggregates).
pub(crate) const TREE_SITE: usize = usize::MAX;

/// Injectively encodes a fault site from tree coordinates.
pub(crate) fn site(axis: Axis, tree: usize, leaf: usize) -> u64 {
    let a = match axis {
        Axis::Rows => 0u64,
        Axis::Cols => 1u64,
    };
    (a << 61) | ((tree as u64 & 0x1FFF_FFFF) << 32) | (leaf as u64 & 0xFFFF_FFFF)
}

/// A leaf severed from one of its trees by an unrecoverable dead IP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DarkLeaf {
    /// Tree family the leaf was cut from.
    pub axis: Axis,
    /// Tree index within the family.
    pub tree: usize,
    /// Leaf index within the tree.
    pub leaf: usize,
}

/// What graceful degradation decided for each dead internal processor of an
/// installed plan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Dead IPs whose subtree traffic was rerouted through the live sibling
    /// subtree (the subtree stays reachable, at a time penalty).
    pub rerouted: Vec<DeadIp>,
    /// Leaves with no surviving path to their tree root. They are excluded
    /// from every primitive on that axis — reported, not fatal.
    pub dark: Vec<DarkLeaf>,
}

impl FaultReport {
    /// Whether `leaf` of `tree` along `axis` is dark.
    pub fn is_dark(&self, axis: Axis, tree: usize, leaf: usize) -> bool {
        self.dark.iter().any(|d| d.axis == axis && d.tree == tree && d.leaf == leaf)
    }
}

/// Per-network fault state: the plan, its running counters, the degradation
/// verdicts, and the transit round counter that keys the deterministic
/// draws.
#[derive(Clone, Debug)]
pub(crate) struct FaultState {
    pub plan: FaultPlan,
    pub stats: FaultStats,
    pub report: FaultReport,
    /// Dark-leaf membership as dense masks `[tree][leaf]`, one per axis,
    /// so primitives don't scan the report per word.
    dark_rows: Vec<Vec<bool>>,
    dark_cols: Vec<Vec<bool>>,
    /// Largest rerouted subtree span per axis (0 = no reroute): the worst
    /// lateral crossing a primitive on that axis must absorb.
    pub reroute_span: [usize; 2],
    /// Transit round counter, bumped once per faultable primitive.
    round: u64,
}

impl FaultState {
    /// Builds the state for a network whose row trees have `row_leaves`
    /// leaves each (and `row_trees` of them), ditto columns.
    pub fn new(
        plan: FaultPlan,
        row_trees: usize,
        row_leaves: usize,
        col_trees: usize,
        col_leaves: usize,
    ) -> Self {
        let mut state = FaultState {
            plan,
            stats: FaultStats::default(),
            report: FaultReport::default(),
            dark_rows: vec![vec![false; row_leaves]; row_trees],
            dark_cols: vec![vec![false; col_leaves]; col_trees],
            reroute_span: [0, 0],
            round: 0,
        };
        state.resolve_dead_ips();
        state
    }

    /// Classifies every declared dead IP as rerouted or subtree-darkening.
    fn resolve_dead_ips(&mut self) {
        let dead = self.plan.dead_ips().to_vec();
        for ip in &dead {
            let axis = match ip.axis {
                TreeAxis::Rows => Axis::Rows,
                TreeAxis::Cols => Axis::Cols,
            };
            let (masks, ax) = match axis {
                Axis::Rows => (&mut self.dark_rows, 0),
                Axis::Cols => (&mut self.dark_cols, 1),
            };
            if ip.tree >= masks.len() {
                continue; // IP outside this network's trees: inert
            }
            let leaves = masks[ip.tree].len();
            let levels = log2_ceil(leaves as u64);
            if ip.level > levels || leaves == 0 {
                continue; // IP above the root: inert
            }
            let span = 1usize << ip.level;
            let lo = ip.index.saturating_mul(span);
            if lo >= leaves {
                continue; // IP outside the tree: inert
            }
            let nodes_at_level = (leaves >> ip.level).max(1);
            let sibling = ip.index ^ 1;
            let sibling_alive = nodes_at_level > 1
                && !dead.iter().any(|d| {
                    d.axis == ip.axis
                        && d.tree == ip.tree
                        && d.level == ip.level
                        && d.index == sibling
                });
            if sibling_alive {
                self.report.rerouted.push(*ip);
                self.reroute_span[ax] = self.reroute_span[ax].max(span);
            } else {
                let hi = (lo + span).min(leaves);
                for (off, dark) in masks[ip.tree][lo..hi].iter_mut().enumerate() {
                    if !*dark {
                        *dark = true;
                        self.report.dark.push(DarkLeaf { axis, tree: ip.tree, leaf: lo + off });
                    }
                }
            }
        }
    }

    /// Whether `leaf` of `tree` along `axis` has no path to its root.
    pub fn is_dark(&self, axis: Axis, tree: usize, leaf: usize) -> bool {
        let masks = match axis {
            Axis::Rows => &self.dark_rows,
            Axis::Cols => &self.dark_cols,
        };
        masks.get(tree).is_some_and(|t| t.get(leaf).copied().unwrap_or(false))
    }

    /// Starts a new transit round (call once per faultable primitive).
    pub fn next_round(&mut self) {
        self.round += 1;
    }

    /// The current transit-round cursor (checkpointed so a restored run
    /// replays the same deterministic fault draws).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Overwrites the transit-round cursor (checkpoint restore, or an
    /// epoch bump so a retry sees fresh draws instead of the same
    /// transient).
    pub fn set_round(&mut self, round: u64) {
        self.round = round;
    }

    /// Passes `value` through one faulty word transit at `site`. Returns
    /// the delivered value and the number of *extra* attempts spent
    /// (0 = clean first try). Parity-detected faults are retried up to the
    /// plan's budget; exhaustion delivers an erasure (`NULL`); a
    /// parity-evading double flip delivers corrupted data.
    pub fn transit(
        &mut self,
        site: u64,
        value: Option<Word>,
        word_bits: u32,
    ) -> (Option<Word>, u32) {
        if value.is_none() || self.plan.word_fault_rate() <= 0.0 {
            return (value, 0); // NULL carries no payload to corrupt
        }
        let width = u64::from(word_bits.max(2));
        let retries = self.plan.max_retries();
        for attempt in 0..=retries {
            match self.plan.word_fault(site, self.round, attempt) {
                None => {
                    if attempt > 0 {
                        self.stats.corrected += 1;
                        self.stats.retries += u64::from(attempt);
                    }
                    return (value, attempt);
                }
                Some(WordFaultKind::Drop) | Some(WordFaultKind::SingleFlip { .. }) => {
                    // Framing (drop) or parity (single flip) catches it;
                    // the round is retransmitted.
                    self.stats.injected += 1;
                    self.stats.detected += 1;
                }
                Some(WordFaultKind::DoubleFlip { bit_a, bit_b }) => {
                    // Even flip count: parity balances, corruption sails
                    // through as good data.
                    self.stats.injected += 1;
                    self.stats.silent += 1;
                    if attempt > 0 {
                        self.stats.retries += u64::from(attempt);
                    }
                    let a = u64::from(bit_a) % width;
                    let mut b = u64::from(bit_b) % width;
                    if b == a {
                        b = (b + 1) % width;
                    }
                    let corrupted = value.map(|w| w ^ (1 << a) ^ (1 << b));
                    return (corrupted, attempt);
                }
            }
        }
        self.stats.retries += u64::from(retries);
        self.stats.erasures += 1;
        (None, retries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_transits_untouched() {
        let mut fs = FaultState::new(FaultPlan::new(1), 4, 4, 4, 4);
        for s in 0..100 {
            assert_eq!(fs.transit(s, Some(42), 8), (Some(42), 0));
        }
        assert_eq!(fs.stats, FaultStats::default());
        assert!(fs.report.rerouted.is_empty() && fs.report.dark.is_empty());
    }

    #[test]
    fn null_words_never_fault() {
        let mut fs = FaultState::new(FaultPlan::new(1).with_word_fault_rate(1.0), 4, 4, 4, 4);
        assert_eq!(fs.transit(0, None, 8), (None, 0));
        assert_eq!(fs.stats.injected, 0);
    }

    #[test]
    fn always_faulting_plan_erases_or_corrupts() {
        let mut fs = FaultState::new(
            FaultPlan::new(5).with_word_fault_rate(1.0).with_max_retries(2),
            4,
            4,
            4,
            4,
        );
        let mut erased = 0;
        let mut corrupted = 0;
        for s in 0..200 {
            fs.next_round();
            let (v, _) = fs.transit(s, Some(1000), 12);
            match v {
                None => erased += 1,
                Some(w) => {
                    assert_ne!(w, 1000, "rate 1.0 never delivers the clean word");
                    corrupted += 1;
                }
            }
        }
        assert!(erased > 0 && corrupted > 0, "{erased}/{corrupted}");
        assert_eq!(fs.stats.erasures, erased);
        assert_eq!(fs.stats.silent, corrupted);
        assert!(fs.stats.retries > 0);
    }

    #[test]
    fn moderate_rate_mostly_corrects() {
        let mut fs = FaultState::new(FaultPlan::new(9).with_word_fault_rate(0.3), 8, 8, 8, 8);
        for s in 0..500 {
            fs.next_round();
            let _ = fs.transit(s, Some(7), 8);
        }
        assert!(fs.stats.detected > 0);
        assert!(
            fs.stats.corrected > fs.stats.erasures,
            "retries should repair most detected faults: {:?}",
            fs.stats
        );
    }

    #[test]
    fn double_flip_changes_exactly_two_bits() {
        let mut fs = FaultState::new(
            FaultPlan::new(3)
                .with_word_fault_rate(1.0)
                .with_drop_fraction(0.0)
                .with_undetectable_fraction(1.0),
            4,
            4,
            4,
            4,
        );
        for s in 0..50 {
            fs.next_round();
            let (v, att) = fs.transit(s, Some(0), 10);
            assert_eq!(att, 0, "undetected faults are not retried");
            let delivered = v.expect("double flips never erase");
            assert_eq!(delivered.count_ones(), 2, "exactly two bits flipped");
            assert!(delivered < (1 << 10), "flips stay inside the word width");
        }
    }

    #[test]
    fn dead_ip_with_live_sibling_reroutes() {
        let plan = FaultPlan::new(0).with_dead_ip(TreeAxis::Rows, 2, 1, 0);
        let fs = FaultState::new(plan, 8, 8, 8, 8);
        assert_eq!(fs.report.rerouted.len(), 1);
        assert!(fs.report.dark.is_empty());
        assert_eq!(fs.reroute_span[0], 2);
        assert!(!fs.is_dark(Axis::Rows, 2, 0));
    }

    #[test]
    fn dead_sibling_pair_darkens_both_subtrees() {
        let plan = FaultPlan::new(0).with_dead_ip(TreeAxis::Cols, 1, 2, 0).with_dead_ip(
            TreeAxis::Cols,
            1,
            2,
            1,
        );
        let fs = FaultState::new(plan, 8, 8, 8, 8);
        assert!(fs.report.rerouted.is_empty());
        assert_eq!(fs.report.dark.len(), 8, "both 4-leaf subtrees dark");
        for leaf in 0..8 {
            assert!(fs.is_dark(Axis::Cols, 1, leaf));
            assert!(!fs.is_dark(Axis::Cols, 2, leaf), "other trees unaffected");
        }
    }

    #[test]
    fn dead_tree_root_darkens_the_whole_tree() {
        // Level log2(leaves) is the root: no sibling inside the tree.
        let plan = FaultPlan::new(0).with_dead_ip(TreeAxis::Rows, 0, 3, 0);
        let fs = FaultState::new(plan, 4, 8, 4, 8);
        assert_eq!(fs.report.dark.len(), 8);
        assert!((0..8).all(|l| fs.is_dark(Axis::Rows, 0, l)));
    }

    #[test]
    fn out_of_range_dead_ips_are_inert() {
        let plan = FaultPlan::new(0)
            .with_dead_ip(TreeAxis::Rows, 99, 1, 0)
            .with_dead_ip(TreeAxis::Rows, 0, 30, 0)
            .with_dead_ip(TreeAxis::Rows, 0, 1, 99);
        let fs = FaultState::new(plan, 4, 4, 4, 4);
        assert!(fs.report.rerouted.is_empty() && fs.report.dark.is_empty());
    }

    #[test]
    fn site_encoding_is_injective_across_axes() {
        assert_ne!(site(Axis::Rows, 1, 2), site(Axis::Cols, 1, 2));
        assert_ne!(site(Axis::Rows, 1, 2), site(Axis::Rows, 2, 1));
        assert_ne!(site(Axis::Rows, 1, TREE_SITE), site(Axis::Rows, 1, 0));
    }
}
