//! Critical-path reports: where every bit-time of a run's completion
//! went, rendered from the causal layers added in `orthotrees-obs`.
//!
//! Two views, matching the two levels of the stack:
//!
//! * **word level** — [`segment_table`] renders
//!   [`Recorder::segment_attribution`]: every clock charge of an
//!   instrumented `SORT-OTN` / `SORT-OTC` run decomposed into
//!   wire-delay / queue-wait / node-compute slices per phase. The single
//!   word-serial clock makes every slice critical, so the table's total
//!   equals the completion time exactly (the `Σ segments == completion`
//!   invariant enforced by `crates/core/tests/observability.rs` and the
//!   causal proptest suite);
//! * **bit level** — [`broadcast_critical_path`] runs the discrete-event
//!   `ROOTTOLEAF` model with a [`CausalTrace`] installed and walks
//!   backward from the completion event. [`critical_path_table`] renders
//!   the per-level attribution, [`closed_form_check`] cross-checks the
//!   wire slices against [`CostModel::level_bit_delays`] bit-for-bit
//!   (the `CRIT-001` rule in `orthotrees-verify` asserts the same), and
//!   [`slack_table`] shows how much later each off-path link's last bit
//!   could have arrived without delaying completion.

use orthotrees::obs::causal::{CausalTrace, CriticalPath, SegmentKind};
use orthotrees::obs::Recorder;
use orthotrees::BitTime;
use orthotrees_sim::experiments;
use orthotrees_vlsi::{CostModel, SimError};
use std::fmt::Write as _;

/// Runs the bit-level `ROOTTOLEAF` model over `leaves` leaves with a
/// causal trace installed; returns the completion time and the trace.
///
/// # Errors
///
/// Returns [`SimError`] if the bit-level run fails to complete.
pub fn broadcast_critical_path(
    leaves: usize,
    m: &CostModel,
) -> Result<(BitTime, CausalTrace), SimError> {
    experiments::broadcast_traced(leaves, m)
}

/// Renders the word-level causal attribution table: one row per
/// `(phase, kind)` pair, sorted by total descending, with a footer that
/// states whether the slices tile the completion time exactly.
pub fn segment_table(rec: &Recorder, completion: BitTime) -> String {
    let attr = rec.segment_attribution();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:<14} {:>6} {:>12} {:>7}",
        "phase", "kind", "count", "total", "share"
    );
    let mut attributed = 0u64;
    for t in &attr {
        attributed += t.total.get();
        let pct = if completion.get() == 0 {
            0.0
        } else {
            100.0 * t.total.get() as f64 / completion.get() as f64
        };
        let _ = writeln!(
            out,
            "{:<20} {:<14} {:>6} {:>12} {:>6.1}%",
            t.phase,
            t.kind.name(),
            t.count,
            t.total.get(),
            pct
        );
    }
    let check = if attributed == completion.get() { "complete" } else { "INCOMPLETE" };
    let _ = writeln!(
        out,
        "{:<20} {:<14} {:>6} {:>12} ({check}: Σ segments = completion {})",
        "TOTAL",
        "",
        "",
        attributed,
        completion.get()
    );
    out
}

/// Renders the bit-level critical path: the kind totals, then every
/// wire-delay slice with its link and length (tree levels read root-first
/// in time order on a broadcast).
pub fn critical_path_table(path: &CriticalPath) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "critical path: {} slices over [0, {}], tiling {}",
        path.segments.len(),
        path.completion.get(),
        if path.covers_completion() { "exact" } else { "BROKEN" }
    );
    for kind in [SegmentKind::WireDelay, SegmentKind::QueueWait, SegmentKind::NodeCompute] {
        let total = path.kind_total(kind);
        let pct = if path.completion.get() == 0 {
            0.0
        } else {
            100.0 * total.get() as f64 / path.completion.get() as f64
        };
        let _ = writeln!(out, "  {:<14} {:>10} ({pct:>5.1}%)", kind.name(), total.get());
    }
    let _ = writeln!(out, "  wire slices (time order; root level is crossed first):");
    for s in path.wire_segments() {
        let _ = writeln!(
            out,
            "    link {:<4} len {:>6}λ  [{:>6}, {:>6})  {:>5} τ",
            s.link.unwrap_or(usize::MAX),
            s.link_len.unwrap_or(0),
            s.start.get(),
            s.end.get(),
            s.duration().get()
        );
    }
    out
}

/// Cross-checks a clean broadcast's critical path against the closed
/// forms: completion must equal [`CostModel::tree_root_to_leaf`] plus the
/// one-τ zero-length injection feed the harness adds above the root, and
/// the positive-length wire slices must equal
/// [`CostModel::level_bit_delays`] root-first, bit for bit. Returns a
/// one-line verdict (`EXACT` / `MISMATCH …`).
pub fn closed_form_check(m: &CostModel, leaves: usize, path: &CriticalPath) -> String {
    let pitch = m.leaf_pitch();
    let expect_t = m.tree_root_to_leaf(leaves, pitch) + m.delay.wire_bit_delay(0);
    if path.completion != expect_t {
        return format!(
            "closed-form check: MISMATCH (completion {} ≠ tree_root_to_leaf + feed {})\n",
            path.completion.get(),
            expect_t.get()
        );
    }
    let wires: Vec<BitTime> = path
        .wire_segments()
        .filter(|s| s.link_len.unwrap_or(0) > 0)
        .map(|s| s.duration())
        .collect();
    let mut expect = m.level_bit_delays(leaves, pitch);
    expect.reverse(); // closed form lists the leaf level first
    if wires == expect {
        format!(
            "closed-form check: EXACT (completion {} = Σ per-level wire delays + tail)\n",
            expect_t.get()
        )
    } else {
        format!("closed-form check: MISMATCH (wire slices {wires:?} ≠ levels {expect:?})\n")
    }
}

/// Renders the per-link slack table: the `k` links whose last delivered
/// bit arrived closest to completion. The critical path's final link has
/// slack 0; everything else shows how much later it could have run.
pub fn slack_table(trace: &CausalTrace, k: usize) -> String {
    let mut slacks = trace.link_slacks();
    slacks.sort_by_key(|s| (s.slack, s.link));
    let mut out = String::new();
    let _ = writeln!(out, "{:<6} {:>8} {:>12} {:>10}", "link", "len(λ)", "last arrive", "slack");
    for s in slacks.iter().take(k) {
        let _ = writeln!(
            out,
            "{:<6} {:>8} {:>12} {:>10}",
            s.link,
            s.link_len,
            s.last_arrive.get(),
            s.slack.get()
        );
    }
    if slacks.len() > k {
        let _ = writeln!(out, "… {} more links elided", slacks.len() - k);
    }
    out
}

/// The full critical-path section of the report: word-level causal
/// attribution for `SORT-OTN` and `SORT-OTC` at size `sort_n`, then the
/// bit-level `ROOTTOLEAF` critical path over `sort_n` leaves with the
/// closed-form cross-check and the slack table.
pub fn critpath_report(sort_n: usize, seed: u64) -> String {
    let mut out = String::new();
    let (otn_out, otn_rec) = crate::obsreport::otn_sort_observed(sort_n, seed);
    let _ = writeln!(out, "Causal attribution — SORT-OTN, N = {sort_n}:");
    out.push_str(&segment_table(&otn_rec, otn_out.time));
    out.push('\n');

    let (otc_out, otc_rec) = crate::obsreport::otc_sort_observed(sort_n, seed);
    let _ = writeln!(out, "Causal attribution — SORT-OTC, N = {sort_n}:");
    out.push_str(&segment_table(&otc_rec, otc_out.time));
    out.push('\n');

    let m = CostModel::thompson(sort_n);
    match broadcast_critical_path(sort_n, &m) {
        Ok((t, trace)) => {
            let _ = writeln!(
                out,
                "Critical path — bit-level ROOTTOLEAF over {sort_n} leaves \
                 (completion {} bit-times):",
                t.get()
            );
            match trace.critical_path() {
                Some(path) => {
                    out.push_str(&critical_path_table(&path));
                    out.push_str(&closed_form_check(&m, sort_n, &path));
                    out.push_str(&slack_table(&trace, 8));
                }
                None => {
                    let _ = writeln!(out, "(no delivered bits — nothing to attribute)");
                }
            }
        }
        Err(e) => {
            let _ = writeln!(out, "Critical path: bit-level run failed: {e}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_table_is_complete_for_both_sorts() {
        let (out, rec) = crate::obsreport::otn_sort_observed(16, 7);
        let text = segment_table(&rec, out.time);
        assert!(text.contains("complete"), "{text}");
        assert!(!text.contains("INCOMPLETE"), "{text}");
        assert!(text.contains("wire-delay") && text.contains("queue-wait"), "{text}");

        let (out, rec) = crate::obsreport::otc_sort_observed(16, 7);
        let text = segment_table(&rec, out.time);
        assert!(!text.contains("INCOMPLETE"), "{text}");
    }

    #[test]
    fn broadcast_path_is_exact_against_the_closed_form() {
        let m = CostModel::thompson(16);
        let (t, trace) = broadcast_critical_path(16, &m).unwrap();
        let path = trace.critical_path().unwrap();
        // The raw trace includes the harness's 1τ injection feed that the
        // returned completion time excludes.
        assert_eq!(path.completion, t + m.delay.wire_bit_delay(0));
        let text = closed_form_check(&m, 16, &path);
        assert!(text.contains("EXACT"), "{text}");
    }

    #[test]
    fn critical_path_table_reports_exact_tiling() {
        let m = CostModel::thompson(8);
        let (_, trace) = broadcast_critical_path(8, &m).unwrap();
        let path = trace.critical_path().unwrap();
        let text = critical_path_table(&path);
        assert!(text.contains("tiling exact"), "{text}");
        assert!(text.contains("wire-delay"), "{text}");
    }

    #[test]
    fn slack_table_has_a_zero_slack_row() {
        let m = CostModel::thompson(8);
        let (_, trace) = broadcast_critical_path(8, &m).unwrap();
        let text = slack_table(&trace, 4);
        // The completion link itself has slack 0 and sorts first.
        let first_row = text.lines().nth(1).unwrap();
        assert!(first_row.trim_end().ends_with('0'), "{text}");
    }

    #[test]
    fn mismatch_is_reported_not_hidden() {
        // Check a path against the wrong model: the verdict must say so.
        let m = CostModel::thompson(16);
        let (_, trace) = broadcast_critical_path(16, &m).unwrap();
        let path = trace.critical_path().unwrap();
        let wrong = CostModel::constant_delay(16);
        let text = closed_form_check(&wrong, 16, &path);
        assert!(text.contains("MISMATCH"), "{text}");
    }

    #[test]
    fn critpath_report_has_all_sections() {
        let text = critpath_report(16, 42);
        assert!(text.contains("Causal attribution — SORT-OTN"));
        assert!(text.contains("Causal attribution — SORT-OTC"));
        assert!(text.contains("closed-form check: EXACT"), "{text}");
        assert!(!text.contains("INCOMPLETE"), "{text}");
        assert!(!text.contains("BROKEN"), "{text}");
    }
}
