//! Telemetry invariant checkers: does the streaming bus tell the truth?
//!
//! The `obs::telemetry` quantile sketch and the `obs::flight` crash
//! recorder are both *lossy by design* — the sketch keeps `O(1/ε)`
//! tuples instead of every sample, the flight ring keeps a bounded tail
//! instead of the whole log. Two rules hold each to its contract:
//!
//! - **TEL-001** — every reported sketch quantile lies inside the
//!   sketch's ε rank band of the *exact* quantiles, recomputed from the
//!   full recorded sample list (for the stock runs: the pipeline's
//!   per-problem completion times).
//! - **TEL-002** — a flight-recorder dump is a *contiguous suffix* of
//!   the run's event log: same events, same order, no holes, with
//!   1-based `seq`s ending exactly at the dump's `recorded_events`.
//!
//! [`stock_findings`] sweeps TEL-001 over pipelined OTN sorting batches
//! and TEL-002 over black-box bit-level broadcasts; `netlint --all` runs
//! it in CI. The mutation tests below prove each rule fires on a
//! deliberately corrupted sketch / tampered dump.

use crate::diag::Finding;
use orthotrees::obs::json::Json;
use orthotrees::obs::telemetry::{within_rank_band, QuantileSketch, Telemetry, REPORTED_QUANTILES};
use orthotrees::otn::pipeline::pipelined_sorts;
use orthotrees::otn::Otn;
use orthotrees_sim::{experiments, EventLog};
use orthotrees_vlsi::CostModel;

/// Checks TEL-001: each reported quantile of `sketch` must fall inside
/// the ε rank band of `samples` (the exact recorded values, any order).
pub fn check_sketch(network: &str, sketch: &QuantileSketch, samples: &[u64]) -> Vec<Finding> {
    let mut out = Vec::new();
    if sketch.count() != samples.len() as u64 {
        out.push(Finding::new(
            "TEL-001",
            network,
            "sample count",
            format!(
                "sketch holds {} observations but {} were recorded",
                sketch.count(),
                samples.len()
            ),
            "feed the sketch exactly once per recorded sample",
        ));
        return out;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    for (name, q) in REPORTED_QUANTILES {
        let Some(v) = sketch.quantile(q) else {
            if !sorted.is_empty() {
                out.push(Finding::new(
                    "TEL-001",
                    network,
                    name,
                    "sketch reports no value for a non-empty stream",
                    "a populated sketch must answer every quantile query",
                ));
            }
            continue;
        };
        if !within_rank_band(&sorted, q, sketch.epsilon(), v) {
            out.push(Finding::new(
                "TEL-001",
                network,
                name,
                format!(
                    "sketch reports {v} for q={q} but the exact ε={} rank band excludes it",
                    sketch.epsilon()
                ),
                "feed the sketch every recorded sample and keep ε consistent between write and read",
            ));
        }
    }
    out
}

/// Checks TEL-002: `dump` (an `orthotrees-flight/v1` document) must be a
/// contiguous suffix of `log`, the delivered-bit event log of the same
/// run — same events in the same order, 1-based `seq`s with no holes,
/// ending exactly at the dump's lifetime `recorded_events` count.
pub fn check_flight_dump(network: &str, dump: &Json, log: &[EventLog]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut fail = |subject: String, detail: String| {
        out.push(Finding::new(
            "TEL-002",
            network,
            subject,
            detail,
            "record every delivered event in order and never mutate the retained tail",
        ));
    };
    if dump.get("schema").and_then(Json::as_str) != Some(orthotrees::obs::flight::SCHEMA) {
        fail(
            "schema".to_string(),
            "document does not carry the orthotrees-flight/v1 schema tag".to_string(),
        );
        return out;
    }
    let Some(tail) = dump.get("tail").and_then(Json::as_arr) else {
        fail("tail".to_string(), "document has no tail array".to_string());
        return out;
    };
    let recorded = dump.get("recorded_events").and_then(Json::as_u64).unwrap_or(0);
    if recorded != log.len() as u64 {
        fail(
            "recorded_events".to_string(),
            format!("dump recorded {recorded} events but the log delivered {}", log.len()),
        );
        return out;
    }
    if tail.len() > log.len() {
        fail(
            "tail".to_string(),
            format!("tail holds {} events but the log only {}", tail.len(), log.len()),
        );
        return out;
    }
    let skip = log.len() - tail.len();
    for (i, (entry, le)) in tail.iter().zip(&log[skip..]).enumerate() {
        let seq = entry.get("seq").and_then(Json::as_u64).unwrap_or(0);
        let want_seq = (skip + i + 1) as u64;
        if seq != want_seq {
            fail(
                format!("tail position {i}"),
                format!("seq {seq} where a contiguous suffix requires {want_seq}"),
            );
            break;
        }
        let matches = entry.get("at").and_then(Json::as_u64) == Some(le.at.get())
            && entry.get("node").and_then(Json::as_u64) == Some(le.node.0 as u64)
            && entry.get("port").and_then(Json::as_u64) == Some(le.port.0 as u64)
            && entry.get("value").and_then(Json::as_bool) == Some(le.bit.value)
            && entry.get("index").and_then(Json::as_u64) == Some(u64::from(le.bit.index));
        if !matches {
            fail(
                format!("tail position {i}"),
                format!("recorded event disagrees with log entry {} ", skip + i),
            );
            break;
        }
    }
    out
}

/// Deterministic distinct sorting inputs (the same bijective scramble
/// the profiler stock runs use).
fn scrambled_words(n: usize, salt: i64) -> Vec<i64> {
    (0..n as i64).map(|i| ((i + salt * n as i64) * 37) ^ 0x15).collect()
}

/// Runs one pipelined OTN sorting batch and checks TEL-001 on its
/// completion-time sketch against the exact schedule completions.
fn pipeline_stock(n: usize, problems: usize, out: &mut Vec<Finding>) {
    let name = format!("PIPELINE-OTN[{n}x{problems}]");
    let net = match Otn::for_sorting(n) {
        Ok(net) => net,
        Err(_) => return,
    };
    let inputs: Vec<Vec<i64>> = (0..problems).map(|k| scrambled_words(n, k as i64)).collect();
    match pipelined_sorts(&net, &inputs) {
        Ok(batch) => {
            let mut tel = Telemetry::new(batch.issue_interval.get().max(1));
            batch.record_telemetry(&mut tel);
            let sketch = tel.sketch("pipeline.completion_tau").expect("sketch fed");
            let exact: Vec<u64> = batch.completion_times().iter().map(|t| t.get()).collect();
            out.extend(check_sketch(&name, sketch, &exact));
        }
        Err(e) => out.push(Finding::new(
            "TEL-001",
            &name,
            "run",
            format!("pipelined batch failed: {e}"),
            "fix the word-level model before checking the sketch",
        )),
    }
}

/// The stock telemetry checks `netlint` runs: TEL-001 on pipelined
/// OTN sorting batches (sketch vs exact completion quantiles), TEL-002
/// on black-box bit-level broadcasts (flight dump vs event log).
pub fn stock_findings() -> Vec<Finding> {
    let mut out = Vec::new();
    for (n, problems) in [(16usize, 48usize), (64, 24)] {
        pipeline_stock(n, problems, &mut out);
    }
    for leaves in [4usize, 16, 64] {
        let m = CostModel::thompson(leaves);
        let name = format!("ROOTTOLEAF[{leaves}]");
        match experiments::broadcast_black_box(leaves, &m) {
            Ok((t, log, _tel, mut fl)) => {
                let dump = fl.dump("export", t, &[]);
                out.extend(check_flight_dump(&name, &dump, &log));
            }
            Err(e) => out.push(Finding::new(
                "TEL-002",
                &name,
                "run",
                format!("black-box broadcast failed: {e}"),
                "fix the bit-level model before checking the flight recorder",
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_telemetry_is_clean() {
        let f = stock_findings();
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn a_shifted_sketch_is_tel001() {
        // Sketch fed values 100 larger than the recorded list: every
        // quantile lands outside the exact rank band.
        let mut sk = QuantileSketch::new(0.01);
        let samples: Vec<u64> = (1..=200).collect();
        for &s in &samples {
            sk.observe(s + 100);
        }
        let f = check_sketch("fixture", &sk, &samples);
        assert!(f.iter().any(|f| f.rule == "TEL-001"), "{f:?}");
    }

    #[test]
    fn a_count_mismatch_is_tel001() {
        let mut sk = QuantileSketch::new(0.01);
        sk.observe(5);
        let f = check_sketch("fixture", &sk, &[5, 6]);
        assert!(f.iter().any(|f| f.rule == "TEL-001" && f.subject == "sample count"), "{f:?}");
    }

    #[test]
    fn a_tampered_tail_is_tel002() {
        let m = CostModel::thompson(16);
        let (t, log, _tel, mut fl) = experiments::broadcast_black_box(16, &m).unwrap();
        let dump = fl.dump("export", t, &[]);
        assert!(check_flight_dump("clean", &dump, &log).is_empty());

        // Remove a middle tail entry: the remaining seqs are no longer
        // contiguous — exactly the hole TEL-002 exists to catch.
        let mut tampered = dump.clone();
        let mut tail = dump.get("tail").and_then(Json::as_arr).unwrap().to_vec();
        assert!(tail.len() >= 3, "stock tail long enough to tamper");
        tail.remove(tail.len() / 2);
        tampered.set("tail", Json::arr(tail));
        let f = check_flight_dump("tampered", &tampered, &log);
        assert!(f.iter().any(|f| f.rule == "TEL-002"), "{f:?}");
    }

    #[test]
    fn a_wrong_event_count_is_tel002() {
        let m = CostModel::thompson(4);
        let (t, log, _tel, mut fl) = experiments::broadcast_black_box(4, &m).unwrap();
        let mut dump = fl.dump("export", t, &[]);
        dump.set("recorded_events", Json::u64(log.len() as u64 + 1));
        let f = check_flight_dump("tampered", &dump, &log);
        assert!(f.iter().any(|f| f.rule == "TEL-002" && f.subject == "recorded_events"), "{f:?}");
    }
}
