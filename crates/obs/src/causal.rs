//! Causal tracing: per-hop message provenance and the critical path.
//!
//! The [`Recorder`](crate::Recorder) answers *how long* each phase took;
//! this module answers *why*. Two instruments share one vocabulary of
//! [`SegmentKind`]s (wire delay, queue wait, node compute):
//!
//! * **bit level** — the discrete-event engine of `orthotrees-sim`
//!   assigns every scheduled bit a [`MsgId`] and records one [`Hop`] per
//!   wire admission into a [`CausalTrace`]: which link, when the bit was
//!   presented, when it entered the wire, when it arrived, and which
//!   delivered message *triggered* the emission. A backward walk from the
//!   completion event ([`CausalTrace::critical_path`]) then tiles the
//!   whole completion time `[0, T]` with segments — wire delay, entrance
//!   queueing, and node compute (emission hold) — with no gaps and no
//!   overlaps, so Σ segments = completion exactly. Everything *not* on
//!   the path gets per-link slack ([`CausalTrace::link_slacks`]).
//! * **word level** — the closed-form OTN/OTC machines decompose every
//!   clock charge into [`CausalSegment`]s (stored on the `Recorder`): one
//!   wire-delay segment per tree level, queue-wait for the pipelined word
//!   tail, node-compute for the bit-serial adders/comparators. The serial
//!   clock makes everything critical, so here too Σ segments = elapsed
//!   time, and the per-level wire segments must match the `CostModel`
//!   closed form bit for bit (the `CRIT-*` rules of `orthotrees-verify`).
//!
//! Both instruments follow the crate's zero-overhead contract: the engine
//! holds an `Option<CausalTrace>` and the hot path touches no tracing code
//! when it is `None`.

use orthotrees_vlsi::BitTime;
use std::collections::BTreeMap;

/// Identity of one scheduled bit (the engine's scheduling sequence
/// number, unique per run and stable under tie-break permutations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

/// What a slice of completion time was spent on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SegmentKind {
    /// Propagation along a wire (the delay model applied to its length).
    WireDelay,
    /// Waiting for a busy wire entrance (pipelining / serialisation: one
    /// bit per τ, so a word's tail bits always queue behind its head).
    QueueWait,
    /// Node-side processing before emission (gate delays, emission holds).
    NodeCompute,
}

impl SegmentKind {
    /// Short lower-case label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SegmentKind::WireDelay => "wire-delay",
            SegmentKind::QueueWait => "queue-wait",
            SegmentKind::NodeCompute => "node-compute",
        }
    }
}

/// One word-level causal segment recorded by
/// [`Recorder::segment`](crate::Recorder::segment): a half-open slice
/// `[start, end)` of the simulated clock attributed to one cost category.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CausalSegment {
    /// Index of the innermost open span when the segment was recorded
    /// (resolve to a phase name with
    /// [`Recorder::segment_phase`](crate::Recorder::segment_phase)).
    pub span: Option<usize>,
    /// Tree level the segment belongs to (1 = leaf level), if any.
    pub level: Option<u32>,
    /// Cost category.
    pub kind: SegmentKind,
    /// Segment start on the simulated clock.
    pub start: BitTime,
    /// Segment end (`> start`; zero-length segments are not recorded).
    pub end: BitTime,
}

impl CausalSegment {
    /// The segment's duration.
    pub fn duration(&self) -> BitTime {
        self.end - self.start
    }
}

/// Aggregated word-level attribution for one `(phase, kind)` pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentTotal {
    /// Phase name of the enclosing span (`"(unattributed)"` if none).
    pub phase: String,
    /// Cost category.
    pub kind: SegmentKind,
    /// Number of segments aggregated.
    pub count: u64,
    /// Total duration.
    pub total: BitTime,
}

/// One endpoint of a dynamic reach edge: an abstract register-file cell of
/// the word-level machines, named the way the symbolic dataflow pass
/// (`verify::dflow`) names cells — a `(register plane, leaf)` pair or the
/// tree's root register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReachCell {
    /// Register plane `reg` at leaf `leaf` of the event's tree. On the OTC
    /// the leaf is a whole cycle (stream primitives) or a cycle position
    /// (`VECTORCIRCULATE`), matching the abstraction level of the static
    /// dataflow programs.
    Reg {
        /// Register plane index (`Reg::index` of the executing network).
        reg: u64,
        /// Leaf index within the tree.
        leaf: u64,
    },
    /// The tree's root register (OTN) or root stream buffer (OTC).
    Root,
}

/// One observed word movement recorded by
/// [`Recorder::reach`](crate::Recorder::reach): during reach round
/// `round`, tree `tree` delivered a word from cell `from` into cell `to`.
///
/// Rounds partition events by executed primitive leg
/// ([`Recorder::reach_round_begin`](crate::Recorder::reach_round_begin)):
/// a resolver must read `from` against the register state *at round
/// start*, because a leg's writes never feed its own reads (the executors
/// gather before they write).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReachEvent {
    /// The reach round (one per executed primitive leg, monotone).
    pub round: u64,
    /// Tree index within the executing axis family (cycle index
    /// `i·m + j` for `VECTORCIRCULATE`).
    pub tree: u64,
    /// The cell the word was read from.
    pub from: ReachCell,
    /// The cell the word was written to.
    pub to: ReachCell,
}

/// One bit-hop recorded by the engine: message `msg` was emitted (because
/// delivered message `pred` triggered its node, or on node start) and
/// admitted onto `link`.
///
/// Time tiles exactly: `trigger_at ≤ ready ≤ enter ≤ arrive`, with
/// `ready − trigger_at` the emission hold (node compute), `enter − ready`
/// the wire-entrance queueing and `arrive − enter` the wire delay — and
/// `trigger_at` equals the predecessor's `arrive` (or 0 at node start).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    /// The scheduled bit's id.
    pub msg: MsgId,
    /// The delivered message whose arrival triggered this emission
    /// (`None` for bits emitted at node start).
    pub pred: Option<MsgId>,
    /// Link the bit was admitted onto.
    pub link: usize,
    /// That link's physical length in λ.
    pub link_len: u64,
    /// Arrival time of `pred` at the emitting node (0 at node start).
    pub trigger_at: BitTime,
    /// Time the node presented the bit at the wire (`trigger_at + hold`).
    pub ready: BitTime,
    /// Time the bit actually entered the wire (queueing resolved).
    pub enter: BitTime,
    /// Time the bit arrived at the far end.
    pub arrive: BitTime,
    /// Whether the bit was actually delivered (false for bits lost to a
    /// dropping link fault or a dead receiving node).
    pub delivered: bool,
}

/// Per-link slack relative to the completion event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSlack {
    /// Link id.
    pub link: usize,
    /// Link length in λ.
    pub link_len: u64,
    /// Latest delivered arrival through this link.
    pub last_arrive: BitTime,
    /// `completion − last_arrive`: how much later this link's last bit
    /// could have arrived without delaying completion. The final link of
    /// the critical path has slack 0.
    pub slack: BitTime,
}

/// One segment of the critical path (bit level).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathSegment {
    /// The message whose hop this slice belongs to.
    pub msg: MsgId,
    /// Cost category.
    pub kind: SegmentKind,
    /// The link involved (`None` for node-compute slices).
    pub link: Option<usize>,
    /// That link's length in λ.
    pub link_len: Option<u64>,
    /// Slice start.
    pub start: BitTime,
    /// Slice end (`> start`).
    pub end: BitTime,
}

impl PathSegment {
    /// The slice's duration.
    pub fn duration(&self) -> BitTime {
        self.end - self.start
    }
}

/// The critical path extracted by a backward walk from one delivered
/// message: a gap-free tiling of `[0, completion]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalPath {
    /// The path's slices in time order (earliest first), zero-length
    /// slices elided.
    pub segments: Vec<PathSegment>,
    /// Arrival time of the walk's end message — the time the path
    /// explains.
    pub completion: BitTime,
}

impl CriticalPath {
    /// Total duration attributed to one cost category.
    pub fn kind_total(&self, kind: SegmentKind) -> BitTime {
        self.segments.iter().filter(|s| s.kind == kind).map(PathSegment::duration).sum()
    }

    /// Whether the slices tile `[0, completion]` exactly: contiguous,
    /// starting at 0 and ending at `completion`. The engine's recording
    /// discipline guarantees this; the `CRIT-002` verify rule asserts it.
    pub fn covers_completion(&self) -> bool {
        let contiguous = self.segments.windows(2).all(|w| w[0].end == w[1].start);
        let start_ok = self
            .segments
            .first()
            .map_or(self.completion == BitTime::ZERO, |s| s.start == BitTime::ZERO);
        let end_ok = self
            .segments
            .last()
            .map_or(self.completion == BitTime::ZERO, |s| s.end == self.completion);
        contiguous && start_ok && end_ok
    }

    /// The wire-delay slices in time order (the per-level decomposition a
    /// clean `ROOTTOLEAF` is checked against).
    pub fn wire_segments(&self) -> impl Iterator<Item = &PathSegment> {
        self.segments.iter().filter(|s| s.kind == SegmentKind::WireDelay)
    }
}

/// The bit-level causal trace: every hop of a run, indexed by message id.
#[derive(Clone, Debug, Default)]
pub struct CausalTrace {
    hops: Vec<Hop>,
    by_msg: BTreeMap<u64, usize>,
}

impl CausalTrace {
    /// An empty trace.
    pub fn new() -> Self {
        CausalTrace::default()
    }

    /// Records one hop. Message ids must be unique per run (the engine's
    /// scheduling counter guarantees this).
    pub fn record_hop(&mut self, hop: Hop) {
        self.by_msg.insert(hop.msg.0, self.hops.len());
        self.hops.push(hop);
    }

    /// Marks a recorded hop as never delivered (dropped on the wire or
    /// discarded by a dead receiving node).
    pub fn mark_undelivered(&mut self, msg: MsgId) {
        if let Some(&i) = self.by_msg.get(&msg.0) {
            self.hops[i].delivered = false;
        }
    }

    /// All hops in scheduling order.
    pub fn hops(&self) -> &[Hop] {
        &self.hops
    }

    /// Number of recorded hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The hop of one message, if recorded.
    pub fn hop(&self, msg: MsgId) -> Option<&Hop> {
        self.by_msg.get(&msg.0).map(|&i| &self.hops[i])
    }

    /// The completion event: the delivered hop with the latest arrival
    /// (ties broken towards the later-scheduled message).
    pub fn completion(&self) -> Option<&Hop> {
        self.hops.iter().filter(|h| h.delivered).max_by_key(|h| (h.arrive, h.msg))
    }

    /// Extracts the critical path by walking predecessor edges backwards
    /// from the completion event. `None` if nothing was delivered.
    pub fn critical_path(&self) -> Option<CriticalPath> {
        self.completion().and_then(|h| self.critical_path_to(h.msg))
    }

    /// Extracts the critical path ending at `msg`'s arrival. `None` if
    /// the message (or any predecessor) was never recorded.
    pub fn critical_path_to(&self, msg: MsgId) -> Option<CriticalPath> {
        let completion = self.hop(msg)?.arrive;
        let mut segments = Vec::new();
        let mut cur = Some(msg);
        while let Some(m) = cur {
            let h = self.hop(m)?;
            let mut push = |kind, link: Option<usize>, len, start: BitTime, end: BitTime| {
                if end > start {
                    segments.push(PathSegment {
                        msg: h.msg,
                        kind,
                        link,
                        link_len: len,
                        start,
                        end,
                    });
                }
            };
            push(SegmentKind::WireDelay, Some(h.link), Some(h.link_len), h.enter, h.arrive);
            push(SegmentKind::QueueWait, Some(h.link), Some(h.link_len), h.ready, h.enter);
            push(SegmentKind::NodeCompute, None, None, h.trigger_at, h.ready);
            if h.pred.is_none() {
                debug_assert_eq!(
                    h.trigger_at,
                    BitTime::ZERO,
                    "start-of-run emissions must be anchored at t = 0"
                );
            }
            cur = h.pred;
        }
        segments.reverse();
        Some(CriticalPath { segments, completion })
    }

    /// Per-link slack relative to the completion event, in link-id order.
    /// Links that delivered nothing are omitted. Empty if nothing
    /// completed.
    pub fn link_slacks(&self) -> Vec<LinkSlack> {
        let Some(completion) = self.completion().map(|h| h.arrive) else {
            return Vec::new();
        };
        let mut last: BTreeMap<usize, (u64, BitTime)> = BTreeMap::new();
        for h in self.hops.iter().filter(|h| h.delivered) {
            let e = last.entry(h.link).or_insert((h.link_len, h.arrive));
            e.1 = e.1.max(h.arrive);
        }
        last.into_iter()
            .map(|(link, (link_len, last_arrive))| LinkSlack {
                link,
                link_len,
                last_arrive,
                slack: completion - last_arrive,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-hop chain: start-emitted bit crosses link 0 (delay 3), the
    /// relay holds it 2τ, it queues 1τ at link 1's entrance, then crosses
    /// link 1 (delay 4). Completion at t = 10.
    fn chain() -> CausalTrace {
        let mut tr = CausalTrace::new();
        tr.record_hop(Hop {
            msg: MsgId(1),
            pred: None,
            link: 0,
            link_len: 8,
            trigger_at: BitTime::ZERO,
            ready: BitTime::ZERO,
            enter: BitTime::ZERO,
            arrive: BitTime::new(3),
            delivered: true,
        });
        tr.record_hop(Hop {
            msg: MsgId(2),
            pred: Some(MsgId(1)),
            link: 1,
            link_len: 16,
            trigger_at: BitTime::new(3),
            ready: BitTime::new(5),
            enter: BitTime::new(6),
            arrive: BitTime::new(10),
            delivered: true,
        });
        tr
    }

    #[test]
    fn critical_path_tiles_completion_exactly() {
        let tr = chain();
        let path = tr.critical_path().unwrap();
        assert_eq!(path.completion, BitTime::new(10));
        assert!(path.covers_completion(), "{path:?}");
        let total: BitTime = path.segments.iter().map(PathSegment::duration).sum();
        assert_eq!(total, path.completion);
        assert_eq!(path.kind_total(SegmentKind::WireDelay), BitTime::new(7));
        assert_eq!(path.kind_total(SegmentKind::NodeCompute), BitTime::new(2));
        assert_eq!(path.kind_total(SegmentKind::QueueWait), BitTime::new(1));
    }

    #[test]
    fn path_segments_are_in_time_order_with_links_attached() {
        let path = chain().critical_path().unwrap();
        assert!(path.segments.windows(2).all(|w| w[0].end <= w[1].start));
        let wires: Vec<_> = path.wire_segments().map(|s| (s.link, s.link_len)).collect();
        assert_eq!(wires, vec![(Some(0), Some(8)), (Some(1), Some(16))]);
    }

    #[test]
    fn undelivered_messages_never_complete() {
        let mut tr = chain();
        tr.mark_undelivered(MsgId(2));
        assert_eq!(tr.completion().unwrap().msg, MsgId(1));
        let path = tr.critical_path().unwrap();
        assert_eq!(path.completion, BitTime::new(3));
    }

    #[test]
    fn link_slack_is_zero_on_the_final_link() {
        let slacks = chain().link_slacks();
        assert_eq!(slacks.len(), 2);
        assert_eq!(slacks[0].link, 0);
        assert_eq!(slacks[0].slack, BitTime::new(7));
        assert_eq!(slacks[1].link, 1);
        assert_eq!(slacks[1].slack, BitTime::ZERO);
    }

    #[test]
    fn empty_trace_has_no_path_and_no_slack() {
        let tr = CausalTrace::new();
        assert!(tr.is_empty());
        assert!(tr.critical_path().is_none());
        assert!(tr.link_slacks().is_empty());
    }

    #[test]
    fn gap_in_the_chain_is_detected_by_covers_completion() {
        // Predecessor arrives at 3, but the successor claims trigger 4:
        // the tiling has a hole and covers_completion must say so.
        let mut tr = CausalTrace::new();
        tr.record_hop(Hop {
            msg: MsgId(1),
            pred: None,
            link: 0,
            link_len: 1,
            trigger_at: BitTime::ZERO,
            ready: BitTime::ZERO,
            enter: BitTime::ZERO,
            arrive: BitTime::new(3),
            delivered: true,
        });
        tr.record_hop(Hop {
            msg: MsgId(2),
            pred: Some(MsgId(1)),
            link: 1,
            link_len: 1,
            trigger_at: BitTime::new(4),
            ready: BitTime::new(4),
            enter: BitTime::new(4),
            arrive: BitTime::new(5),
            delivered: true,
        });
        let path = tr.critical_path().unwrap();
        assert!(!path.covers_completion(), "{path:?}");
    }
}
