//! The case runner: draws deterministic cases until the configured number
//! pass, panicking on the first failure (no shrinking).

use crate::{ProptestConfig, TestCaseError, TestCaseResult};

/// Deterministic SplitMix64 generator used for all strategy draws.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let z = self.state;
        let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a, used to derive a per-test base seed from the test's name so
/// every property test explores a distinct deterministic stream.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` until `config.cases` draws pass.
///
/// # Panics
///
/// Panics on the first failing case (carrying the case index and the
/// assertion message), or if `prop_assume!` rejects too many draws.
pub fn run(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u64;
    while passed < config.cases {
        assert!(
            rejected < 16 * config.cases + 256,
            "proptest: too many rejected cases in `{name}` ({rejected} rejections)"
        );
        let mut rng = TestRng::new(base.wrapping_add(index.wrapping_mul(0x2545_F491_4F6C_DD1D)));
        index += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case #{index}: {msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_when_all_cases_pass() {
        run(&ProptestConfig::with_cases(10), "t", |_| Ok(()));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn panics_on_failure() {
        run(&ProptestConfig::with_cases(10), "t", |_| Err(TestCaseError::fail("boom")));
    }

    #[test]
    fn rejections_draw_replacements() {
        let mut n = 0;
        run(&ProptestConfig::with_cases(5), "t", |_| {
            n += 1;
            if n % 2 == 0 {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(n >= 9, "rejected draws were replaced");
    }

    #[test]
    fn same_test_name_same_stream() {
        let (mut a, mut b) = (Vec::new(), Vec::new());
        run(&ProptestConfig::with_cases(4), "stream", |rng| {
            a.push(rng.next_u64());
            Ok(())
        });
        run(&ProptestConfig::with_cases(4), "stream", |rng| {
            b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(a, b);
    }
}
