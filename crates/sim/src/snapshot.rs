//! Engine checkpoint/restore.
//!
//! A [`Snapshot`] captures everything the discrete-event engine needs to
//! resume a run at an event boundary: the clock, the pending-event
//! calendar, every link's pipeline occupancy, every node's mutable state
//! (via [`NodeBehavior::save_state`](crate::NodeBehavior::save_state)), the delivered-event counter the
//! [`RunBudget`](crate::RunBudget) watchdog counts against, and the
//! running [`FaultStats`]. Restoring a snapshot into a freshly built
//! engine of the same shape and then running to quiescence is observably
//! identical — bits, times, results, log, stats — to the uninterrupted
//! run (the `recovery_suite` proptests and the CKPT-001 verify rule hold
//! this to account).
//!
//! Snapshots serialize to the workspace's dependency-free
//! [`Json`] value (schema
//! `orthotrees-snapshot/v1`), so a checkpoint written with
//! [`Snapshot::render`] survives process death and loads back with
//! [`Snapshot::parse`].
//!
//! What a snapshot deliberately does **not** contain: the network shape
//! (nodes, links, routes — configuration, rebuilt by the caller), the
//! installed [`FaultPlan`](crate::FaultPlan) (configuration: its draws are
//! pure functions of the scheduling counter, which *is* saved), and any
//! installed recorder or causal trace (observers, not simulation state).
//! [`Engine::restore`] verifies the target engine matches the checkpoint's
//! shape and rejects mismatches with a typed
//! [`SimError::SnapshotMismatch`].

use crate::engine::{Engine, EventLog, Pending, RunStatus};
use crate::fault::FaultStats;
use crate::node::{Bit, NodeId, PortId};
use orthotrees_obs::json::Json;
use orthotrees_vlsi::{BitTime, DelayModel, SimError};

/// The on-disk schema identifier.
pub const SCHEMA: &str = "orthotrees-snapshot/v1";

/// One calendar entry, in delivery order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SnapEvent {
    at: BitTime,
    /// Raw scheduling counter (the causal `MsgId`). The heap ordering key
    /// is *recomputed* on restore from the engine's tie-break mode, so it
    /// never appears on disk (under LIFO ties it would be `u64::MAX − msg`,
    /// which the JSON integer range cannot carry).
    msg: u64,
    node: usize,
    port: usize,
    value: bool,
    index: u32,
}

/// A checkpoint of a running [`Engine`]. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct Snapshot {
    delay: DelayModel,
    node_count: usize,
    link_count: usize,
    lifo_ties: bool,
    keep_log: bool,
    now: BitTime,
    seq: u64,
    started: bool,
    delivered: u64,
    events: Vec<SnapEvent>,
    free_at: Vec<BitTime>,
    node_states: Vec<Json>,
    fault_stats: FaultStats,
    log: Vec<EventLog>,
}

fn delay_tag(d: DelayModel) -> &'static str {
    match d {
        DelayModel::Constant => "Constant",
        DelayModel::Logarithmic => "Logarithmic",
        DelayModel::Linear => "Linear",
    }
}

fn delay_from_tag(tag: &str) -> Option<DelayModel> {
    match tag {
        "Constant" => Some(DelayModel::Constant),
        "Logarithmic" => Some(DelayModel::Logarithmic),
        "Linear" => Some(DelayModel::Linear),
        _ => None,
    }
}

fn bad(detail: impl Into<String>) -> SimError {
    SimError::SnapshotFormat { detail: detail.into() }
}

fn req<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, SimError> {
    doc.get(key).ok_or_else(|| bad(format!("missing field `{key}`")))
}

fn req_u64(doc: &Json, key: &str) -> Result<u64, SimError> {
    req(doc, key)?.as_u64().ok_or_else(|| bad(format!("field `{key}` is not an integer")))
}

fn req_bool(doc: &Json, key: &str) -> Result<bool, SimError> {
    req(doc, key)?.as_bool().ok_or_else(|| bad(format!("field `{key}` is not a boolean")))
}

fn mismatch(what: &'static str, expected: impl ToString, actual: impl ToString) -> SimError {
    SimError::SnapshotMismatch { what, expected: expected.to_string(), actual: actual.to_string() }
}

impl Snapshot {
    /// Simulated time at the checkpoint.
    pub fn now(&self) -> BitTime {
        self.now
    }

    /// Events delivered up to the checkpoint (the watchdog's counter).
    pub fn delivered_events(&self) -> u64 {
        self.delivered
    }

    /// Number of events pending in the captured calendar.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// The checkpoint as an `orthotrees-snapshot/v1` JSON document.
    pub fn to_json(&self) -> Json {
        let events = self.events.iter().map(|e| {
            Json::Arr(vec![
                Json::u64(e.at.get()),
                Json::u64(e.msg),
                Json::u64(e.node as u64),
                Json::u64(e.port as u64),
                Json::bool(e.value),
                Json::u64(u64::from(e.index)),
            ])
        });
        let log = self.log.iter().map(|e| {
            Json::Arr(vec![
                Json::u64(e.at.get()),
                Json::u64(e.node.0 as u64),
                Json::u64(e.port.0 as u64),
                Json::bool(e.bit.value),
                Json::u64(u64::from(e.bit.index)),
            ])
        });
        let s = &self.fault_stats;
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            (
                "engine",
                Json::obj([
                    ("delay", Json::str(delay_tag(self.delay))),
                    ("nodes", Json::u64(self.node_count as u64)),
                    ("links", Json::u64(self.link_count as u64)),
                    ("lifo_ties", Json::bool(self.lifo_ties)),
                    ("keep_log", Json::bool(self.keep_log)),
                    ("now", Json::u64(self.now.get())),
                    ("seq", Json::u64(self.seq)),
                    ("started", Json::bool(self.started)),
                    ("delivered", Json::u64(self.delivered)),
                ]),
            ),
            ("calendar", Json::arr(events)),
            ("free_at", Json::arr(self.free_at.iter().map(|t| Json::u64(t.get())))),
            ("node_states", Json::Arr(self.node_states.clone())),
            (
                "fault_stats",
                Json::obj([
                    ("injected", Json::u64(s.injected)),
                    ("detected", Json::u64(s.detected)),
                    ("corrected", Json::u64(s.corrected)),
                    ("retries", Json::u64(s.retries)),
                    ("erasures", Json::u64(s.erasures)),
                    ("silent", Json::u64(s.silent)),
                    ("faulty_bits", Json::u64(s.faulty_bits)),
                    ("suppressed", Json::u64(s.suppressed)),
                ]),
            ),
            ("log", Json::arr(log)),
        ])
    }

    /// Renders the checkpoint as JSON text (the on-disk format).
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Loads a checkpoint from a parsed `orthotrees-snapshot/v1` document.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SnapshotFormat`] on a wrong schema tag, a
    /// missing field, or an out-of-range value.
    pub fn from_json(doc: &Json) -> Result<Self, SimError> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(bad(format!("schema tag `{other}`, expected `{SCHEMA}`"))),
            None => return Err(bad("schema tag missing")),
        }
        let engine = req(doc, "engine")?;
        let delay_name =
            req(engine, "delay")?.as_str().ok_or_else(|| bad("field `delay` is not a string"))?;
        let delay = delay_from_tag(delay_name)
            .ok_or_else(|| bad(format!("unknown delay model `{delay_name}`")))?;
        let node_count = req_u64(engine, "nodes")? as usize;
        let link_count = req_u64(engine, "links")? as usize;

        let ev_row = |row: &Json, what: &str, len: usize| -> Result<Vec<Json>, SimError> {
            let arr = row.as_arr().ok_or_else(|| bad(format!("{what} entry is not an array")))?;
            if arr.len() != len {
                return Err(bad(format!("{what} entry has {} fields, expected {len}", arr.len())));
            }
            Ok(arr.to_vec())
        };
        let num = |j: &Json, what: &str| -> Result<u64, SimError> {
            j.as_u64().ok_or_else(|| bad(format!("{what} is not an integer")))
        };
        let flag = |j: &Json, what: &str| -> Result<bool, SimError> {
            j.as_bool().ok_or_else(|| bad(format!("{what} is not a boolean")))
        };

        let mut events = Vec::new();
        for row in
            req(doc, "calendar")?.as_arr().ok_or_else(|| bad("`calendar` is not an array"))?
        {
            let f = ev_row(row, "calendar", 6)?;
            let node = num(&f[2], "calendar node")? as usize;
            let port = num(&f[3], "calendar port")? as usize;
            if node >= node_count {
                return Err(bad(format!("calendar event targets node {node} of {node_count}")));
            }
            events.push(SnapEvent {
                at: BitTime::new(num(&f[0], "calendar time")?),
                msg: num(&f[1], "calendar msg")?,
                node,
                port,
                value: flag(&f[4], "calendar bit value")?,
                index: u32::try_from(num(&f[5], "calendar bit index")?)
                    .map_err(|_| bad("calendar bit index exceeds u32"))?,
            });
        }

        let free_at = req(doc, "free_at")?
            .as_arr()
            .ok_or_else(|| bad("`free_at` is not an array"))?
            .iter()
            .map(|t| Ok(BitTime::new(num(t, "free_at entry")?)))
            .collect::<Result<Vec<_>, SimError>>()?;
        if free_at.len() != link_count {
            return Err(bad(format!(
                "free_at has {} entries for {link_count} links",
                free_at.len()
            )));
        }

        let node_states = req(doc, "node_states")?
            .as_arr()
            .ok_or_else(|| bad("`node_states` is not an array"))?;
        if node_states.len() != node_count {
            return Err(bad(format!(
                "node_states has {} entries for {node_count} nodes",
                node_states.len()
            )));
        }

        let fs = req(doc, "fault_stats")?;
        let fault_stats = FaultStats {
            injected: req_u64(fs, "injected")?,
            detected: req_u64(fs, "detected")?,
            corrected: req_u64(fs, "corrected")?,
            retries: req_u64(fs, "retries")?,
            erasures: req_u64(fs, "erasures")?,
            silent: req_u64(fs, "silent")?,
            faulty_bits: req_u64(fs, "faulty_bits")?,
            suppressed: req_u64(fs, "suppressed")?,
        };

        let mut log = Vec::new();
        for row in req(doc, "log")?.as_arr().ok_or_else(|| bad("`log` is not an array"))? {
            let f = ev_row(row, "log", 5)?;
            log.push(EventLog {
                at: BitTime::new(num(&f[0], "log time")?),
                node: NodeId(num(&f[1], "log node")? as usize),
                port: PortId(num(&f[2], "log port")? as usize),
                bit: Bit {
                    value: flag(&f[3], "log bit value")?,
                    index: u32::try_from(num(&f[4], "log bit index")?)
                        .map_err(|_| bad("log bit index exceeds u32"))?,
                },
            });
        }

        Ok(Snapshot {
            delay,
            node_count,
            link_count,
            lifo_ties: req_bool(engine, "lifo_ties")?,
            keep_log: req_bool(engine, "keep_log")?,
            now: BitTime::new(req_u64(engine, "now")?),
            seq: req_u64(engine, "seq")?,
            started: req_bool(engine, "started")?,
            delivered: req_u64(engine, "delivered")?,
            events,
            free_at,
            node_states: node_states.to_vec(),
            fault_stats,
            log,
        })
    }

    /// Parses a checkpoint from JSON text (the inverse of
    /// [`Snapshot::render`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SnapshotFormat`] if `text` is not valid JSON or
    /// not a valid `orthotrees-snapshot/v1` document.
    pub fn parse(text: &str) -> Result<Self, SimError> {
        let doc = Json::parse(text).map_err(|e| bad(format!("not valid JSON: {e:?}")))?;
        Snapshot::from_json(&doc)
    }
}

impl Engine {
    /// Captures the engine's complete run state at the current event
    /// boundary. Call between [`Engine::try_run_for`] slices (the engine
    /// is always at an event boundary when that method returns).
    pub fn snapshot(&self) -> Snapshot {
        // `events()` hands the pending set back in whatever order the
        // installed calendar keeps it; sorting by the delivery order key
        // makes the serialized document identical regardless of calendar
        // (the `/v1` byte-compatibility the calendar_suite fixture pins).
        let mut pending: Vec<Pending> = self.queue.events();
        pending.sort_by_key(|p| (p.at, p.seq));
        let events = pending
            .iter()
            .map(|p| SnapEvent {
                at: p.at,
                msg: p.msg,
                node: p.node.0,
                port: p.port.0,
                value: p.bit.value,
                index: p.bit.index,
            })
            .collect();
        Snapshot {
            delay: self.delay_model(),
            node_count: self.nodes.len(),
            link_count: self.links.len(),
            lifo_ties: self.lifo_ties,
            keep_log: self.keep_log,
            now: self.now,
            seq: self.seq,
            started: self.started,
            delivered: self.delivered,
            events,
            free_at: self.links.iter().map(|l| l.free_at).collect(),
            node_states: self.nodes.iter().map(|n| n.save_state()).collect(),
            fault_stats: self.fault_stats,
            log: self.log.clone(),
        }
    }

    /// Restores a checkpoint into this engine.
    ///
    /// The engine must have the *same shape* the checkpoint was written
    /// from: same delay model, node and link counts, tie-break mode and
    /// event-log setting — restoring into anything else would silently
    /// produce garbage, so each mismatch is rejected with a typed error.
    /// The installed fault plan, recorder and causal trace are
    /// configuration, not state: they are left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SnapshotMismatch`] on a shape mismatch, or
    /// [`SimError::SnapshotFormat`] if a node rejects its saved state. On
    /// error the engine may be partially restored and must be discarded.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SimError> {
        if self.delay_model() != snap.delay {
            return Err(mismatch(
                "delay model",
                delay_tag(self.delay_model()),
                delay_tag(snap.delay),
            ));
        }
        if self.nodes.len() != snap.node_count {
            return Err(mismatch("node count", self.nodes.len(), snap.node_count));
        }
        if self.links.len() != snap.link_count {
            return Err(mismatch("link count", self.links.len(), snap.link_count));
        }
        if self.lifo_ties != snap.lifo_ties {
            return Err(mismatch("tie-break mode", self.lifo_ties, snap.lifo_ties));
        }
        if self.keep_log != snap.keep_log {
            return Err(mismatch("event-log setting", self.keep_log, snap.keep_log));
        }
        for (node, state) in self.nodes.iter_mut().zip(&snap.node_states) {
            node.load_state(state)?;
        }
        self.queue.clear();
        for e in &snap.events {
            // The ordering key is recomputed from the tie-break mode; the
            // raw scheduling counter is what the snapshot carries. Either
            // calendar accepts this rebuild — the snapshot's ascending
            // `(at, seq)` order is also the ladder's append fast path.
            let order = if self.lifo_ties { u64::MAX - e.msg } else { e.msg };
            self.queue.push(Pending {
                at: e.at,
                seq: order,
                msg: e.msg,
                node: NodeId(e.node),
                port: PortId(e.port),
                bit: Bit { value: e.value, index: e.index },
            });
        }
        self.depth = snap.events.len();
        for (link, &free_at) in self.links.iter_mut().zip(&snap.free_at) {
            link.free_at = free_at;
        }
        self.now = snap.now;
        self.seq = snap.seq;
        self.started = snap.started;
        self.delivered = snap.delivered;
        self.fault_stats = snap.fault_stats;
        self.log = snap.log.clone();
        Ok(())
    }

    /// [`try_run_for`](Engine::try_run_for), checkpointing every
    /// `interval` delivered events. Returns the final status and the
    /// checkpoints taken, in order (one per completed interval).
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the run; checkpoints taken before
    /// the failure are still returned alongside the error by the recovery
    /// supervisor, which wraps this.
    pub fn run_checkpointed(
        &mut self,
        interval: u64,
        limit: u64,
    ) -> Result<(RunStatus, Vec<Snapshot>), SimError> {
        let mut checkpoints = Vec::new();
        let mut left = limit;
        loop {
            let slice = interval.min(left);
            match self.try_run_for(slice)? {
                RunStatus::Quiescent(t) => return Ok((RunStatus::Quiescent(t), checkpoints)),
                RunStatus::Paused(t) => {
                    checkpoints.push(self.snapshot());
                    left = left.saturating_sub(slice);
                    if left == 0 {
                        return Ok((RunStatus::Paused(t), checkpoints));
                    }
                }
            }
        }
    }
}
