//! Calendar identity checker: the heap oracle versus the ladder queue.
//!
//! The engine's pending-event calendar is pluggable
//! ([`CalendarKind::Heap`] is the original binary heap, kept as the
//! oracle; [`CalendarKind::Ladder`] is the flat-arena ladder queue the
//! engine now defaults to). Because every scheduled event carries a
//! unique `(at, seq)` ordering key, delivery order is a total order that
//! no correct calendar may perturb — the two implementations must deliver
//! the *exact same sequence* of events, not merely the same multiset.
//!
//! [`check_identity`] runs the same network once per calendar and flags
//! any observable divergence — completion time, current time, delivered
//! count, any node result, fault-draw statistics, or the first position
//! at which the two delivery logs disagree — as an ENG-001 finding.

use crate::diag::Finding;
use orthotrees_sim::experiments::{probe_engine, ProbeKind, PROBE_KINDS};
use orthotrees_sim::{CalendarKind, Engine, FaultPlan};
use orthotrees_vlsi::CostModel;

/// Runs `build(Heap)` and `build(Ladder)` to quiescence and reports every
/// observable divergence as ENG-001.
///
/// `build` must construct the *same* network both times, differing only
/// in the engine's calendar — typically
/// `Engine::new(model).with_calendar(kind)`. The checker forces the
/// delivered-bit log on so the comparison covers the full delivery
/// sequence; if the builder ignores the requested calendar the check
/// would be vacuous, so that too is an ENG-001 finding.
pub fn check_identity(network: &str, build: impl Fn(CalendarKind) -> Engine) -> Vec<Finding> {
    let mut heap = build(CalendarKind::Heap).with_event_log();
    let mut ladder = build(CalendarKind::Ladder).with_event_log();
    let mut out = Vec::new();
    for (e, want) in [(&heap, CalendarKind::Heap), (&ladder, CalendarKind::Ladder)] {
        if e.calendar_kind() != want {
            out.push(Finding::new(
                "ENG-001",
                network,
                "builder".to_string(),
                format!(
                    "builder was asked for the {} calendar but installed {}",
                    want.tag(),
                    e.calendar_kind().tag()
                ),
                "thread the requested CalendarKind through Engine::with_calendar",
            ));
        }
    }
    if !out.is_empty() {
        return out;
    }
    let t_heap = heap.try_run();
    let t_ladder = ladder.try_run();
    match (&t_heap, &t_ladder) {
        (Ok(a), Ok(b)) if a != b => out.push(Finding::new(
            "ENG-001",
            network,
            "quiescence time".to_string(),
            format!("heap goes quiescent at {a} τ, ladder at {b} τ"),
            "the calendar must not change when the last event drains",
        )),
        (Ok(_), Ok(_)) => {}
        (a, b) => out.push(Finding::new(
            "ENG-001",
            network,
            "run status".to_string(),
            format!("heap run ended {a:?}, ladder run ended {b:?}"),
            "a budget trip must reproduce identically on both calendars",
        )),
    }
    if heap.completion_time() != ladder.completion_time() {
        out.push(Finding::new(
            "ENG-001",
            network,
            "completion time".to_string(),
            format!(
                "heap completes at {:?}, ladder at {:?}",
                heap.completion_time(),
                ladder.completion_time()
            ),
            "calendar choice must not move the completion event",
        ));
    }
    if heap.delivered_events() != ladder.delivered_events() {
        out.push(Finding::new(
            "ENG-001",
            network,
            "delivered count".to_string(),
            format!(
                "heap delivered {} events, ladder {}",
                heap.delivered_events(),
                ladder.delivered_events()
            ),
            "a calendar must neither drop nor duplicate events",
        ));
    }
    if heap.fault_stats() != ladder.fault_stats() {
        out.push(Finding::new(
            "ENG-001",
            network,
            "fault statistics".to_string(),
            format!("heap drew {:?}, ladder {:?}", heap.fault_stats(), ladder.fault_stats()),
            "fault draws key off MsgId, which must not depend on the calendar",
        ));
    }
    if heap.node_count() != ladder.node_count() {
        out.push(Finding::new(
            "ENG-001",
            network,
            "node count".to_string(),
            format!("builder produced {} vs {} nodes", heap.node_count(), ladder.node_count()),
            "the builder must construct the same network for both calendars",
        ));
        return out;
    }
    for i in 0..heap.node_count() {
        let a = heap.node(orthotrees_sim::NodeId(i)).result();
        let b = ladder.node(orthotrees_sim::NodeId(i)).result();
        if a != b {
            out.push(Finding::new(
                "ENG-001",
                network,
                format!("node {i}"),
                format!("result {a:?} on the heap but {b:?} on the ladder"),
                "calendar choice must not change any node's end state",
            ));
        }
    }
    // The strongest claim: the full delivery *sequence* — not just its
    // multiset — is identical. Report only the first divergence; one
    // transposition early in a run cascades through everything after it.
    let (la, lb) = (heap.log(), ladder.log());
    if la.len() != lb.len() {
        out.push(Finding::new(
            "ENG-001",
            network,
            "event log length".to_string(),
            format!("heap logged {} deliveries, ladder {}", la.len(), lb.len()),
            "a calendar must neither drop nor duplicate events",
        ));
    } else if let Some(i) = (0..la.len()).find(|&i| la[i] != lb[i]) {
        out.push(Finding::new(
            "ENG-001",
            network,
            format!("delivery #{i}"),
            format!("heap delivered {:?} but ladder delivered {:?}", la[i], lb[i]),
            "ties share a unique (at, seq) key; the ladder must honour it exactly",
        ));
    }
    out
}

/// The stock identity checks `netlint` runs: the full engine-level probe
/// repertoire (every paper primitive plus the §IV converging streams) at
/// n = 8 under the Thompson model, clean and under a dense link-fault
/// plan, in both tie-break modes.
pub fn stock_findings() -> Vec<Finding> {
    let m = CostModel::thompson(8);
    let mut out = Vec::new();
    for kind in PROBE_KINDS {
        for lifo in [false, true] {
            for faulted in [false, true] {
                let name = format!(
                    "{} probe [n=8{}{}]",
                    kind.tag(),
                    if lifo { ", lifo ties" } else { "" },
                    if faulted { ", dense faults" } else { "" }
                );
                out.extend(check_identity(&name, |cal| build_probe(kind, &m, cal, lifo, faulted)));
            }
        }
    }
    out
}

fn build_probe(
    kind: ProbeKind,
    m: &CostModel,
    cal: CalendarKind,
    lifo: bool,
    faulted: bool,
) -> Engine {
    let plan = faulted.then(|| FaultPlan::new(7).with_link_fault_rate(0.3));
    let e = probe_engine(kind, 8, m, cal, plan, false);
    if lifo {
        e.with_lifo_ties()
    } else {
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn probe_repertoire_is_clean() {
        assert!(stock_findings().is_empty());
    }

    #[test]
    fn divergent_builds_are_eng001() {
        // An impure builder — FIFO ties on the heap, LIFO on the ladder —
        // makes the delivery sequences differ, which the checker must
        // catch (it is exactly the divergence a broken calendar causes).
        let m = CostModel::thompson(8);
        let flip = Cell::new(false);
        let f = check_identity("impure build", |cal| {
            let lifo = flip.replace(true);
            build_probe(ProbeKind::Stream, &m, cal, lifo, false)
        });
        assert!(f.iter().any(|f| f.rule == "ENG-001"), "{f:?}");
    }

    #[test]
    fn builder_ignoring_the_calendar_is_eng001() {
        let m = CostModel::thompson(8);
        let f = check_identity("ignores kind", |_| {
            build_probe(ProbeKind::Send, &m, CalendarKind::Heap, false, false)
        });
        assert!(f.iter().any(|f| f.subject == "builder"), "{f:?}");
    }
}
