//! The registry cross-checker (`PRIM-001`): the primitive-descriptor
//! registry versus the [`CostModel`] closed forms.
//!
//! The registry ([`orthotrees::primitive::REGISTRY`]) is the single source
//! of truth the executors, the cost model, the span names and the causal
//! attribution all derive from. This pass re-derives, independently of
//! [`CostModel::primitive_cost`], what each [`CostKind`] must price to —
//! the §II.B / §V.B closed-form compositions — and flags any drift, plus
//! the structural invariants that keep the table usable: every
//! communication entry is priced and directed, every cost kind is
//! reachable from some entry, and every composite's legs are themselves
//! registry entries.

use orthotrees::primitive::{Class, REGISTRY};
use orthotrees_vlsi::{BitTime, CostKind, CostModel};

use crate::diag::Finding;

/// Tree sizes the closed-form cross-check sweeps.
const SAMPLE_LEAVES: [usize; 3] = [4, 16, 64];

/// Cycle lengths the stream kinds are priced at.
const SAMPLE_CYCLES: [usize; 2] = [2, 4];

/// The independent restatement of what `kind` must cost: the §II.B tree
/// traversal closed forms, with the stream kinds adding the pipelined
/// `cycle − 1` circulate hops (§V.B).
fn expected_cost(
    m: &CostModel,
    kind: CostKind,
    leaves: usize,
    pitch: u64,
    cycle: usize,
) -> BitTime {
    let tail = m.cycle_step() * (cycle as u64 - 1);
    match kind {
        CostKind::Broadcast => m.tree_root_to_leaf(leaves, pitch),
        CostKind::Send => m.tree_leaf_to_root(leaves, pitch),
        CostKind::Aggregate => m.tree_aggregate(leaves, pitch),
        CostKind::StreamBroadcast => m.tree_root_to_leaf(leaves, pitch) + tail,
        CostKind::StreamSend => m.tree_leaf_to_root(leaves, pitch) + tail,
        CostKind::StreamAggregate => m.tree_aggregate(leaves, pitch) + tail,
        CostKind::CycleStep => m.cycle_step(),
    }
}

/// Checks a pricing function against the closed-form expectations over the
/// sample sweep. [`lint_registry`] passes [`CostModel::primitive_cost`];
/// tests pass corrupted pricers to prove the rule fires.
pub fn lint_costs_with(
    network: &str,
    model: &CostModel,
    price: impl Fn(CostKind, usize, u64, usize) -> BitTime,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let pitch = model.leaf_pitch();
    for kind in CostKind::ALL {
        let cycles: &[usize] =
            if kind.is_stream() || kind == CostKind::CycleStep { &SAMPLE_CYCLES } else { &[1] };
        for &leaves in &SAMPLE_LEAVES {
            for &cycle in cycles {
                let got = price(kind, leaves, pitch, cycle);
                let want = expected_cost(model, kind, leaves, pitch, cycle);
                if got != want {
                    out.push(Finding::new(
                        "PRIM-001",
                        network,
                        format!("{kind:?} leaves={leaves} cycle={cycle}"),
                        format!("priced {got:?}, closed-form composition gives {want:?}"),
                        "keep CostModel::primitive_cost equal to the §II.B/§V.B \
                         closed forms the registry documents",
                    ));
                }
            }
        }
    }
    out
}

/// Checks the registry table itself plus the model's pricing of it:
///
/// 1. every communication entry except the distance-parameterised
///    `PAIRWISE` declares a direction and a cost kind;
/// 2. [`CostModel::primitive_cost`] matches the closed-form composition of
///    every cost kind over the sample sweep;
/// 3. every [`CostKind`] is reachable from some registry entry (a dead
///    closed form means a layer stopped deriving from the table);
/// 4. every composite's legs are registry communication entries.
pub fn lint_registry(network: &str, model: &CostModel) -> Vec<Finding> {
    let mut out = Vec::new();
    for s in REGISTRY.iter().filter(|s| s.class == Class::Communication) {
        if s.name == "PAIRWISE" {
            continue;
        }
        if s.direction.is_none() {
            out.push(Finding::new(
                "PRIM-001",
                network,
                s.name,
                "communication entry declares no direction",
                "add the §II.B/§V.B Direction to the registry entry",
            ));
        }
        if s.cost.is_none() {
            out.push(Finding::new(
                "PRIM-001",
                network,
                s.name,
                "communication entry declares no cost kind",
                "add the CostKind its charge derives from",
            ));
        }
    }
    out.extend(lint_costs_with(network, model, |kind, leaves, pitch, cycle| {
        model.primitive_cost(kind, leaves, pitch, cycle)
    }));
    for kind in CostKind::ALL {
        if !REGISTRY.iter().any(|s| s.cost == Some(kind)) {
            out.push(Finding::new(
                "PRIM-001",
                network,
                format!("{kind:?}"),
                "no registry entry uses this cost kind",
                "either a primitive stopped deriving its cost from the registry \
                 or the kind should be removed",
            ));
        }
    }
    for s in REGISTRY.iter().filter(|s| s.class == Class::Composite) {
        let Some((up, down)) = s.composite_of else {
            out.push(Finding::new(
                "PRIM-001",
                network,
                s.name,
                "composite declares no legs",
                "set composite_of to the (upward, downward) registry names",
            ));
            continue;
        };
        for leg in [up, down] {
            if !REGISTRY.iter().any(|e| e.name == leg && e.class == Class::Communication) {
                out.push(Finding::new(
                    "PRIM-001",
                    network,
                    s.name,
                    format!("composite leg {leg:?} is not a registry communication entry"),
                    "reference only communication-class registry names",
                ));
            }
        }
    }
    out
}

/// The registry pass over the stock cost models (the `netlint` entry
/// point).
pub fn stock_findings() -> Vec<Finding> {
    let mut out = Vec::new();
    for n in [16usize, 64, 256] {
        for m in [CostModel::thompson(n), CostModel::constant_delay(n), CostModel::linear_delay(n)]
        {
            out.extend(lint_registry(&format!("registry[n={n}] under {:?}", m.delay), &m));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_registry_is_clean() {
        assert!(stock_findings().is_empty(), "{:?}", stock_findings());
    }

    #[test]
    fn a_drifted_closed_form_is_prim001() {
        let m = CostModel::thompson(16);
        // Corrupt the pricer: Send drawn from the aggregate form instead
        // of the leaf-to-root form (the historical drift class the
        // registry exists to prevent).
        let fs = lint_costs_with("mutated", &m, |kind, leaves, pitch, cycle| match kind {
            CostKind::Send => m.tree_aggregate(leaves, pitch),
            _ => m.primitive_cost(kind, leaves, pitch, cycle),
        });
        assert!(!fs.is_empty());
        assert!(fs.iter().all(|f| f.rule == "PRIM-001"));
        assert!(fs.iter().all(|f| f.subject.starts_with("Send")));
    }

    #[test]
    fn a_zeroed_stream_tail_is_prim001() {
        let m = CostModel::thompson(64);
        let fs = lint_costs_with("mutated", &m, |kind, leaves, pitch, _| {
            // Corrupt the pricer: streams forget their cycle tail.
            m.primitive_cost(kind, leaves, pitch, 1)
        });
        assert!(fs.iter().any(|f| f.subject.starts_with("StreamBroadcast")));
        // CycleStep's price does not depend on the cycle length, so the
        // corrupted pricer still gets it right.
        assert!(!fs.iter().any(|f| f.subject.starts_with("CycleStep")));
    }
}
