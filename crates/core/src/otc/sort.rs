//! `SORT-OTC` — sorting `N` numbers on the `(N/L × N/L)`-OTC in
//! `Θ(log² N)` (paper §VI.A).
//!
//! Input port `i` streams group `i`'s `L` numbers (`x[iL..(i+1)L]`); the
//! procedure mirrors SORT-OTN with streams in place of single words:
//!
//! 1. `ROOTTOCYCLE(row(i), dest = (all, A))` — every cycle of row `i`
//!    holds group `i`;
//! 2. `CYCLETOCYCLE(column(i), source = (i, A), dest = (all, B))` — every
//!    cycle `(i,j)` also holds group `j`;
//! 3. `L` rounds of compare-and-`CIRCULATE` count, per element of group
//!    `i`, how many elements of group `j` precede it;
//! 4. `SUM-CYCLETOCYCLE(row(i))` turns the per-group counts into global
//!    ranks;
//! 5. each cycle moves its rank-`p·m + j` holdings to stream slot `p` of
//!    register `D`, and one `CYCLETOROOT(column(j))` emits column `j`'s
//!    output interleave (ranks `≡ j mod m`).

use super::{Axis, Otc, PhaseCost};
use crate::otn::sort::SortOutcome;
use crate::word::Word;
use orthotrees_vlsi::ModelError;

/// Sorts `xs` on the OTC `net` (`xs.len()` must equal `side · cycle_len`).
/// Duplicates are allowed. Returns the same outcome shape as
/// [`crate::otn::sort::sort`].
///
/// # Errors
///
/// Returns [`ModelError`] if the input length does not match the network.
pub fn sort(net: &mut Otc, xs: &[Word]) -> Result<SortOutcome, ModelError> {
    let m = net.side();
    let l = net.cycle_len();
    let n = m * l;
    ModelError::require_equal("sort input length vs network capacity", n, xs.len())?;

    let a = net.alloc_reg("A");
    let b = net.alloc_reg("B");
    let c = net.alloc_reg("C");
    let r = net.alloc_reg("R");
    let d = net.alloc_reg("D");

    let groups: Vec<Vec<Word>> = (0..m).map(|i| xs[i * l..(i + 1) * l].to_vec()).collect();
    net.load_row_root_buffers(&groups);

    let stats_before = *net.clock().stats();
    let (_, time) = net.elapsed(|net| {
        net.begin_phase(crate::primitive::spec_for("SORT-OTC").name);
        // 1) group i to every cycle of row i.
        net.root_to_cycle(Axis::Rows, a, |_, _, _| true);
        // 2) group j (from diagonal cycle (j,j)) to every cycle of column j.
        net.cycle_to_cycle(Axis::Cols, a, |i, j, _, _| i == j, b, |_, _, _| true);
        // 3) rank counting: L compare rounds with B circulating.
        net.clear_reg(c);
        for p in 0..l {
            net.bp_phase(PhaseCost::Compare, |i, j, q, v| {
                let (av, bv) = (v.get(a, i, j, q), v.get(b, i, j, q));
                let (Some(av), Some(bv)) = (av, bv) else { return None };
                let ia = (i * l + q) as Word;
                let ib = (j * l + (q + p) % l) as Word;
                let beats = av > bv || (av == bv && ia > ib);
                if beats {
                    let cur = v.get(c, i, j, q).unwrap_or(0);
                    Some((c, Some(cur + 1)))
                } else {
                    None
                }
            });
            net.circulate(&[b]);
        }
        // 4) global ranks: sum the counts across each row.
        net.sum_cycle_to_cycle(Axis::Rows, c, |_, _, _, _| true, r, |_, _, _| true);
        // 5) stage outputs: rank p·m + j goes to stream slot p in column j.
        net.cycle_phase(PhaseCost::Words(l as u64), |_, j, cyc| {
            for q in 0..l {
                cyc.set(d, q, None);
            }
            for q in 0..l {
                if let (Some(rank), Some(val)) = (cyc.get(r, q), cyc.get(a, q)) {
                    // Out-of-range ranks only arise from corrupted words
                    // under a fault plan; staging skips them so the run
                    // degrades instead of indexing out of the cycle.
                    if rank < 0 || rank as usize >= n {
                        continue;
                    }
                    let rank = rank as usize;
                    if rank % m == j {
                        cyc.set(d, rank / m, Some(val));
                    }
                }
            }
        });
        net.cycle_to_root(Axis::Cols, d, |i, j, q, v| v.get(d, i, j, q).is_some());
        net.end_phase();
    });

    let degraded = net.has_fault_plan();
    let buffers = net.read_col_root_buffers();
    let mut sorted = vec![0; n];
    let mut missing = Vec::new();
    for (j, buf) in buffers.iter().enumerate() {
        for (p, v) in buf.iter().enumerate() {
            match v {
                Some(w) => sorted[p * m + j] = *w,
                None if degraded => missing.push(p * m + j),
                // Invariant (fault-free): ranks are a permutation of 0..N,
                // so every output stream slot is filled exactly once.
                None => {
                    panic!("rank invariant violated: output slot {} received no word", p * m + j)
                }
            }
        }
    }
    missing.sort_unstable();
    let stats = net.clock().stats().since(&stats_before);
    Ok(SortOutcome { sorted, missing, time, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(xs: &[Word]) -> SortOutcome {
        let mut net = Otc::for_sorting(xs.len()).unwrap();
        sort(&mut net, xs).unwrap()
    }

    fn assert_sorts(xs: &[Word]) -> SortOutcome {
        let out = run(xs);
        let mut expect = xs.to_vec();
        expect.sort_unstable();
        assert_eq!(out.sorted, expect, "input: {xs:?}");
        out
    }

    #[test]
    fn sorts_sixteen_distinct() {
        let xs: Vec<Word> = (0..16).rev().collect();
        assert_sorts(&xs);
    }

    #[test]
    fn sorts_duplicates() {
        assert_sorts(&[9, 9, 9, 1, 2, 2, 3, 9, 9, 9, 0, 0, 5, 5, 5, 5]);
    }

    #[test]
    fn sorts_negatives_and_mixed() {
        let xs: Vec<Word> = (0..64).map(|v| ((v * 29) % 23) - 11).collect();
        assert_sorts(&xs);
    }

    #[test]
    fn random_inputs_sort_correctly() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5EED);
        for &n in &[16usize, 64, 256] {
            let xs: Vec<Word> = (0..n).map(|_| rng.random_range(-1000..1000)).collect();
            assert_sorts(&xs);
        }
    }

    #[test]
    fn time_is_theta_log_squared() {
        let mut ratios = Vec::new();
        for k in [4u32, 6, 8, 10] {
            let n = 1usize << k;
            let xs: Vec<Word> = (0..n as Word).map(|v| (v * 37) % n as Word).collect();
            let out = run(&xs);
            ratios.push(out.time.as_f64() / (k as f64 * k as f64));
        }
        let lo = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ratios.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi / lo < 4.0, "SORT-OTC not Θ(log²N): {ratios:?}");
    }

    #[test]
    fn otc_sort_time_is_comparable_to_otn_sort_time() {
        // §V's whole point: same time as the OTN, less area.
        let n = 256;
        let xs: Vec<Word> = (0..n as Word).map(|v| (v * 101) % 97).collect();
        let otc_t = run(&xs).time.as_f64();
        let mut otn = crate::otn::Otn::for_sorting(n).unwrap();
        let otn_t = crate::otn::sort::sort(&mut otn, &xs).unwrap().time.as_f64();
        let ratio = otc_t / otn_t;
        assert!((0.3..5.0).contains(&ratio), "OTC/OTN sort time ratio {ratio:.2}");
    }

    #[test]
    fn rejects_wrong_length() {
        let mut net = Otc::for_sorting(16).unwrap();
        assert!(sort(&mut net, &[1, 2, 3]).is_err());
    }

    #[test]
    fn outputs_interleave_by_rank_mod_m() {
        // Directly inspect the output buffers: column j must hold ranks
        // ≡ j (mod m) in slot order.
        let n = 16;
        let xs: Vec<Word> = (0..n as Word).map(|v| (v * 7) % 16).collect();
        let mut net = Otc::for_sorting(n).unwrap();
        let _ = sort(&mut net, &xs).unwrap();
        let m = net.side();
        let bufs = net.read_col_root_buffers();
        let mut expect = xs.clone();
        expect.sort_unstable();
        for (j, buf) in bufs.iter().enumerate() {
            for (p, v) in buf.iter().enumerate() {
                assert_eq!(v.unwrap(), expect[p * m + j]);
            }
        }
    }
}
