//! A tiny closed-form complexity algebra for terms of the shape
//! `c · N^a · (log₂ N)^b`.
//!
//! Every cell of the paper's Tables I–IV is such a term (with `a` possibly
//! fractional — the mesh sorts in `Θ(N^(1/2))` — and `b` possibly negative —
//! the PSN/CCC occupy `Θ(N²/log² N)` area). [`Complexity`] lets the analysis
//! crate *evaluate* the paper's entries at concrete `N`, *compose* them
//! (`AT² = A·T²`), *order* them asymptotically, and *find crossovers*
//! numerically, so the reproduced tables can print paper-predicted and
//! measured values side by side.

use std::fmt;

/// A term `coeff · N^n_exp · (log₂ N)^log_exp`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Complexity {
    /// Leading constant (1.0 for a bare Θ-form).
    pub coeff: f64,
    /// Exponent of `N` (fractional exponents allowed, e.g. `0.5`).
    pub n_exp: f64,
    /// Exponent of `log₂ N` (negative means division by a log power).
    pub log_exp: i32,
}

impl Complexity {
    /// The constant term `1`.
    pub const ONE: Complexity = Complexity { coeff: 1.0, n_exp: 0.0, log_exp: 0 };

    /// `N^a · log^b N` with unit coefficient.
    pub const fn new(n_exp: f64, log_exp: i32) -> Self {
        Complexity { coeff: 1.0, n_exp, log_exp }
    }

    /// `N^a` with unit coefficient.
    pub const fn poly(n_exp: f64) -> Self {
        Complexity::new(n_exp, 0)
    }

    /// `log^b N` with unit coefficient.
    pub const fn polylog(log_exp: i32) -> Self {
        Complexity::new(0.0, log_exp)
    }

    /// Returns this term scaled by `c`.
    #[must_use]
    pub fn with_coeff(self, c: f64) -> Self {
        Complexity { coeff: c, ..self }
    }

    /// Evaluates the term at a concrete problem size `n ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (the log factors would vanish or blow up).
    pub fn eval(&self, n: u64) -> f64 {
        assert!(n >= 2, "Complexity::eval needs n >= 2, got {n}");
        let nf = n as f64;
        let l = nf.log2();
        self.coeff * nf.powf(self.n_exp) * l.powi(self.log_exp)
    }

    /// Product of two terms (exponents add, coefficients multiply).
    #[must_use]
    pub fn mul(&self, other: &Complexity) -> Complexity {
        Complexity {
            coeff: self.coeff * other.coeff,
            n_exp: self.n_exp + other.n_exp,
            log_exp: self.log_exp + other.log_exp,
        }
    }

    /// `self²` — convenience for AT² composition.
    #[must_use]
    pub fn squared(&self) -> Complexity {
        self.mul(self)
    }

    /// The figure of merit `A · T²` from an area term and a time term.
    pub fn at2(area: &Complexity, time: &Complexity) -> Complexity {
        area.mul(&time.squared())
    }

    /// Asymptotic comparison as `N → ∞` (ignores coefficients):
    /// compares `(n_exp, log_exp)` lexicographically.
    pub fn asymptotic_cmp(&self, other: &Complexity) -> std::cmp::Ordering {
        self.n_exp
            .partial_cmp(&other.n_exp)
            .expect("n_exp is never NaN")
            .then(self.log_exp.cmp(&other.log_exp))
    }

    /// Returns `true` if `self` grows strictly slower than `other`.
    pub fn dominates(&self, other: &Complexity) -> bool {
        self.asymptotic_cmp(other) == std::cmp::Ordering::Less
    }

    /// Smallest power-of-two `N` in `[4, limit]` at which `self.eval(N) <
    /// other.eval(N)`, if any: the *crossover point* where the asymptotically
    /// better term actually wins.
    pub fn crossover_below(&self, other: &Complexity, limit: u64) -> Option<u64> {
        let mut n = 4u64;
        while n <= limit {
            if self.eval(n) < other.eval(n) {
                return Some(n);
            }
            n = n.checked_mul(2)?;
        }
        None
    }
}

impl fmt::Display for Complexity {
    /// Formats in the paper's table style, e.g. `N^2 log^4 N`,
    /// `N^2 / log^2 N`, `N^1/2`, `1`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if (self.coeff - 1.0).abs() > 1e-12 {
            parts.push(format!("{}", self.coeff));
        }
        if self.n_exp != 0.0 {
            if (self.n_exp - 1.0).abs() < 1e-12 {
                parts.push("N".to_string());
            } else if (self.n_exp - 0.5).abs() < 1e-12 {
                parts.push("N^1/2".to_string());
            } else if (self.n_exp.fract()).abs() < 1e-12 {
                parts.push(format!("N^{}", self.n_exp as i64));
            } else {
                parts.push(format!("N^{}", self.n_exp));
            }
        }
        match self.log_exp {
            0 => {}
            1 => parts.push("log N".to_string()),
            b if b > 0 => parts.push(format!("log^{b} N")),
            b => {
                if parts.is_empty() {
                    parts.push("1".to_string());
                }
                parts.push(format!("/ log^{} N", -b));
            }
        }
        if parts.is_empty() {
            parts.push("1".to_string());
        }
        write!(f, "{}", parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn eval_matches_closed_form() {
        let c = Complexity::new(2.0, 4); // N² log⁴ N
        let v = c.eval(16);
        assert!((v - 256.0 * 256.0).abs() < 1e-6, "16²·4⁴ = {v}");
    }

    #[test]
    fn eval_fractional_exponent() {
        let c = Complexity::poly(0.5);
        assert!((c.eval(256) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn eval_negative_log_power() {
        let c = Complexity::new(2.0, -2); // N²/log²N
        assert!((c.eval(16) - 256.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn eval_rejects_tiny_n() {
        let _ = Complexity::ONE.eval(1);
    }

    #[test]
    fn at2_composes_table_one_otc_row() {
        // OTC sorting: A = N², T = log²N  =>  AT² = N² log⁴ N.
        let a = Complexity::poly(2.0);
        let t = Complexity::polylog(2);
        let at2 = Complexity::at2(&a, &t);
        assert_eq!(at2.n_exp, 2.0);
        assert_eq!(at2.log_exp, 4);
    }

    #[test]
    fn asymptotic_ordering_matches_paper_table_three() {
        // CC: OTC (N² log⁸) beats OTN (N² log¹⁰) beats PSN/CCC (N⁴ log⁴)
        // beats nothing vs mesh (N⁴) — mesh and PSN differ only in logs.
        let otc = Complexity::new(2.0, 8);
        let otn = Complexity::new(2.0, 10);
        let psn = Complexity::new(4.0, 4);
        let mesh = Complexity::new(4.0, 0);
        assert!(otc.dominates(&otn));
        assert!(otn.dominates(&psn));
        assert!(mesh.dominates(&psn));
        assert_eq!(otc.asymptotic_cmp(&otc), Ordering::Equal);
    }

    #[test]
    fn crossover_found_where_logs_lose_to_polynomials() {
        // N² log¹⁰ N < N⁴ once log¹⁰N < N², i.e. fairly large N.
        let otn_cc = Complexity::new(2.0, 10);
        let mesh_cc = Complexity::poly(4.0);
        let x = otn_cc.crossover_below(&mesh_cc, 1 << 40).expect("crossover must exist");
        assert!(x > 4);
        assert!(otn_cc.eval(x) < mesh_cc.eval(x));
        assert!(otn_cc.eval(x / 2) >= mesh_cc.eval(x / 2));
    }

    #[test]
    fn crossover_absent_when_dominated() {
        let big = Complexity::poly(4.0);
        let small = Complexity::poly(2.0);
        assert_eq!(big.crossover_below(&small, 1 << 40), None);
    }

    #[test]
    fn display_matches_table_style() {
        assert_eq!(Complexity::new(2.0, 4).to_string(), "N^2 log^4 N");
        assert_eq!(Complexity::new(2.0, -2).to_string(), "N^2 / log^2 N");
        assert_eq!(Complexity::poly(0.5).to_string(), "N^1/2");
        assert_eq!(Complexity::poly(1.0).to_string(), "N");
        assert_eq!(Complexity::polylog(1).to_string(), "log N");
        assert_eq!(Complexity::ONE.to_string(), "1");
        assert_eq!(Complexity::polylog(-2).to_string(), "1 / log^2 N");
    }

    #[test]
    fn mul_adds_exponents_and_coefficients() {
        let a = Complexity::new(1.5, 2).with_coeff(3.0);
        let b = Complexity::new(0.5, -1).with_coeff(2.0);
        let p = a.mul(&b);
        assert_eq!(p.n_exp, 2.0);
        assert_eq!(p.log_exp, 1);
        assert_eq!(p.coeff, 6.0);
    }
}
