//! Shared plumbing for the reproduction binaries and benches.
//!
//! Every table and figure of the paper has a regenerating target:
//!
//! | target | regenerates |
//! |---|---|
//! | `cargo run -p orthotrees-bench --bin table1` | Table I (sorting, log-delay) |
//! | `… --bin table2` | Table II (Boolean matmul) |
//! | `… --bin table3` | Table III (connected components + MST) |
//! | `… --bin table4` | Table IV (sorting, constant-delay) |
//! | `… --bin figures` | Figs. 1–3 (layouts, ASCII + SVG + area sweeps) |
//! | `… --bin extras` | §IV bitonic/DFT, §VIII pipelining, ablations |
//! | `… --bin repro` | everything above in one report |
//!
//! Pass `--full` for the larger sweep grids (slower, tighter fits).

use orthotrees_analysis::report::ReportConfig;

pub mod compare;
pub mod export;
pub mod profile;
pub mod summary;

/// Sweep-size presets for the binaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// Seconds-scale grids (default).
    Quick,
    /// Minutes-scale grids (`--full`): one more doubling everywhere.
    Full,
}

impl Preset {
    /// Parses process arguments: `--full` selects [`Preset::Full`].
    pub fn from_args(args: impl Iterator<Item = String>) -> Preset {
        for a in args {
            if a == "--full" {
                return Preset::Full;
            }
        }
        Preset::Quick
    }

    /// The preset's name as written into `BENCH_*.json`.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Quick => "quick",
            Preset::Full => "full",
        }
    }

    /// The sweep grids for this preset.
    pub fn config(self) -> ReportConfig {
        match self {
            Preset::Quick => ReportConfig::default(),
            Preset::Full => ReportConfig {
                sort_ns: vec![16, 32, 64, 128, 256, 512, 1024],
                matmul_ns: vec![2, 4, 8, 16, 32, 64],
                graph_ns: vec![8, 16, 32, 64, 128, 256, 512],
                ..ReportConfig::default()
            },
        }
    }
}

/// Reads the preset from `std::env::args`.
pub fn preset_from_env() -> Preset {
    Preset::from_args(std::env::args().skip(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_flag() {
        assert_eq!(Preset::from_args(["--full".to_string()].into_iter()), Preset::Full);
        assert_eq!(Preset::from_args(["--fast".to_string()].into_iter()), Preset::Quick);
        assert_eq!(Preset::from_args(std::iter::empty()), Preset::Quick);
    }

    #[test]
    fn full_grids_extend_quick_grids() {
        let quick = Preset::Quick.config();
        let full = Preset::Full.config();
        assert!(full.sort_ns.len() > quick.sort_ns.len());
        assert!(full.sort_ns.starts_with(&quick.sort_ns));
        assert_eq!(quick.seed, full.seed, "same workloads at shared sizes");
    }
}
