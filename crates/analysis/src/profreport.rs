//! Time-resolved profile reports: per-window tables, hot-spot
//! attribution and the engine-structure footprint, rendered from a
//! windowed [`Profiler`].
//!
//! Mirrors `obsreport`'s two levels:
//!
//! * **word level** — [`otn_sort_profiled`] / [`otc_sort_profiled`]
//!   re-bucket a recorded sort's causal segments into windows
//!   ([`Profiler::from_recorder`]), so the wire/queue/compute mix is
//!   visible *over time* rather than only in aggregate;
//! * **bit level** — [`orthotrees_sim::experiments::broadcast_profiled`] runs the
//!   discrete-event `ROOTTOLEAF` model with the engine profiler on:
//!   events, calendar depth and link traffic per window, plus the
//!   calendar-depth peak footprint the event-core overhaul must be
//!   sized for.
//!
//! [`profile_report`] renders all of it; `report::full_report` appends
//! it after the critical-path section.

use crate::obsreport::{otc_sort_observed, otn_sort_observed};
use orthotrees::obs::profile::Profiler;
use orthotrees::obs::Recorder;
use orthotrees::otn::sort::SortOutcome;
use orthotrees_sim::experiments;
use orthotrees_vlsi::CostModel;
use std::fmt::Write as _;

/// Runs `SORT-OTN` on `n` seeded words with a recorder installed and
/// re-buckets the recorded causal segments into a windowed profile
/// (window width auto-sized to the completion time).
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn otn_sort_profiled(n: usize, seed: u64) -> (SortOutcome, Recorder, Profiler) {
    let (out, rec) = otn_sort_observed(n, seed);
    let prof = Profiler::from_recorder(&rec, Profiler::auto_width(out.time.get()));
    (out, rec, prof)
}

/// Runs `SORT-OTC` on `n` seeded words with a recorder installed and
/// re-buckets the recorded causal segments into a windowed profile.
///
/// # Panics
///
/// Panics if `n` is not a power of two or below the OTC minimum (4).
pub fn otc_sort_profiled(n: usize, seed: u64) -> (SortOutcome, Recorder, Profiler) {
    let (out, rec) = otc_sort_observed(n, seed);
    let prof = Profiler::from_recorder(&rec, Profiler::auto_width(out.time.get()));
    (out, rec, prof)
}

/// Renders the per-window summary table: time range, events, calendar
/// depth (max / mean), link bits, and the queue/wire/compute/fault-
/// overhead τ mix. Empty windows are skipped and at most `max_rows`
/// active windows are shown (the rest elided with a count), so report
/// length stays bounded.
pub fn window_table(prof: &Profiler, max_rows: usize) -> String {
    let mut out = String::new();
    let w = prof.width();
    let _ = writeln!(
        out,
        "{:<16} {:>7} {:>7} {:>8} {:>7} {:>7} {:>7} {:>7} {:>6} {:>7}",
        "window(tau)",
        "events",
        "calmax",
        "calmean",
        "bits",
        "queue",
        "wire",
        "compute",
        "fault",
        "f.ovh"
    );
    let active: Vec<_> = prof
        .windows()
        .iter()
        .filter(|win| {
            win.events + win.link_bits + win.queue_wait + win.wire + win.compute + win.faults > 0
        })
        .collect();
    for win in active.iter().take(max_rows) {
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>7} {:>8.1} {:>7} {:>7} {:>7} {:>7} {:>6} {:>7}",
            format!("[{}, {})", win.index * w, (win.index + 1) * w),
            win.events,
            win.cal_max,
            win.cal_mean(),
            win.link_bits,
            win.queue_wait,
            win.wire,
            win.compute,
            win.faults,
            win.fault_overhead
        );
    }
    if active.len() > max_rows {
        let _ = writeln!(out, "… {} more active windows elided", active.len() - max_rows);
    }
    let t = prof.totals();
    let _ = writeln!(
        out,
        "{:<16} {:>7} {:>7} {:>8} {:>7} {:>7} {:>7} {:>7} {:>6} {:>7}  (Σ windows)",
        format!("TOTAL ({} win)", prof.windows().len()),
        t.events,
        "",
        "",
        t.link_bits,
        t.queue_wait,
        t.wire,
        t.compute,
        t.faults,
        t.fault_overhead
    );
    out
}

/// Renders the top-`k` hot-spot attribution — nodes/links by traffic at
/// engine level, phases by segment τ at word level — one `name: value`
/// row per line.
pub fn hot_table(prof: &Profiler, k: usize) -> String {
    let mut out = String::new();
    let hot = prof.hot_spots(k);
    if hot.is_empty() {
        let _ = writeln!(out, "hot spots: none recorded");
        return out;
    }
    let _ = writeln!(out, "hot spots (top {}):", hot.len());
    for h in hot {
        let _ = writeln!(out, "  {:<24} {}", h.name, h.value);
    }
    out
}

/// Renders the engine-structure footprint captured at the calendar-depth
/// peak, or a placeholder for word-level profiles (which have no
/// calendar).
pub fn footprint_line(prof: &Profiler) -> String {
    match prof.footprint() {
        Some(f) => format!(
            "footprint at peak (t = {} tau): {} calendar entries, {} busy links, \
             {} events delivered\n",
            f.at.get(),
            f.calendar_entries,
            f.busy_links,
            f.delivered_events
        ),
        None => "footprint: n/a (word-level profile)\n".to_string(),
    }
}

/// The full windowed-profile section of the report: word-level SORT-OTN
/// and SORT-OTC window tables with hot phases, and the bit-level
/// `ROOTTOLEAF` engine profile with calendar-depth percentiles and the
/// peak footprint.
pub fn profile_report(sort_n: usize, seed: u64) -> String {
    let mut out = String::new();

    let (otn_out, _, otn_prof) = otn_sort_profiled(sort_n, seed);
    let _ = writeln!(
        out,
        "Windowed profile — SORT-OTN, N = {sort_n} (completion {} bit-times, window {} tau):",
        otn_out.time.get(),
        otn_prof.width()
    );
    out.push_str(&window_table(&otn_prof, 16));
    out.push_str(&hot_table(&otn_prof, 5));
    out.push('\n');

    let (otc_out, _, otc_prof) = otc_sort_profiled(sort_n, seed);
    let _ = writeln!(
        out,
        "Windowed profile — SORT-OTC, N = {sort_n} (completion {} bit-times, window {} tau):",
        otc_out.time.get(),
        otc_prof.width()
    );
    out.push_str(&window_table(&otc_prof, 16));
    out.push_str(&hot_table(&otc_prof, 5));
    out.push('\n');

    let m = CostModel::thompson(sort_n);
    match experiments::broadcast_profiled(sort_n, &m) {
        Ok((t, rec, prof)) => {
            let _ = writeln!(
                out,
                "Engine window profile — bit-level ROOTTOLEAF over {sort_n} leaves \
                 (completion {} bit-times, window {} tau):",
                t.get(),
                prof.width()
            );
            out.push_str(&window_table(&prof, 16));
            out.push_str(&hot_table(&prof, 5));
            let cal = rec.calendar_depth();
            let _ = writeln!(
                out,
                "calendar depth p50 {}, p99 {}, peak {}",
                cal.percentile(50.0),
                cal.percentile(99.0),
                prof.peak_calendar_depth()
            );
            out.push_str(&footprint_line(&prof));
        }
        Err(e) => {
            let _ = writeln!(out, "Engine window profile: bit-level run failed: {e}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_profile_tiles_the_completion_time() {
        let (out, rec, prof) = otn_sort_profiled(16, 7);
        let t = prof.totals();
        assert_eq!(t.wire + t.queue_wait + t.compute, rec.segments_total().get());
        assert_eq!(rec.segments_total(), out.time, "Σ segments == completion (PR 4 invariant)");
        for (i, w) in prof.windows().iter().enumerate() {
            assert_eq!(w.index, i as u64, "gapless windows");
        }
    }

    #[test]
    fn otc_word_profile_tiles_too() {
        let (out, rec, prof) = otc_sort_profiled(16, 7);
        let t = prof.totals();
        assert_eq!(t.wire + t.queue_wait + t.compute, rec.segments_total().get());
        assert_eq!(rec.segments_total(), out.time);
    }

    #[test]
    fn window_table_sums_and_elides() {
        let (_, _, prof) = otn_sort_profiled(16, 7);
        let text = window_table(&prof, 4);
        assert!(text.contains("TOTAL"), "{text}");
        assert!(text.contains("Σ windows"), "{text}");
        let active = prof
            .windows()
            .iter()
            .filter(|w| w.events + w.link_bits + w.queue_wait + w.wire + w.compute + w.faults > 0)
            .count();
        assert_eq!(text.contains("elided"), active > 4, "{text}");
    }

    #[test]
    fn hot_table_names_word_phases() {
        let (_, _, prof) = otn_sort_profiled(16, 7);
        let text = hot_table(&prof, 5);
        assert!(text.contains("hot spots"), "{text}");
        assert!(text.contains("SORT-OTN") || text.contains("ROOTTOLEAF"), "{text}");
    }

    #[test]
    fn profile_report_has_all_three_sections_and_a_footprint() {
        let text = profile_report(16, 42);
        assert!(text.contains("SORT-OTN"), "{text}");
        assert!(text.contains("SORT-OTC"), "{text}");
        assert!(text.contains("Engine window profile"), "{text}");
        assert!(text.contains("footprint at peak"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }
}
