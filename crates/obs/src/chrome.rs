//! Chrome `trace_event` exporter (Perfetto-compatible).
//!
//! Renders a [`Recorder`]'s spans as *complete* (`"ph": "X"`) events in the
//! Chrome Trace Event JSON Object Format, which <https://ui.perfetto.dev>
//! and `chrome://tracing` load directly. One simulated bit-time (τ) maps
//! to one microsecond of trace time — bit-times are the only clock the
//! simulator has, and the viewer's zoom makes the unit label irrelevant.
//!
//! Counters and histogram summaries ride along under `"otherData"`, which
//! the viewers ignore but tooling can read back with [`crate::json`].

use crate::json::Json;
use crate::Recorder;

/// Renders the recorder as a Chrome-trace JSON document.
///
/// Spans become `"ph": "X"` complete events on one track (`pid` 0, `tid`
/// 0); nesting is reconstructed by the viewer from containment. Counters
/// and histogram means are attached under `"otherData"`.
pub fn chrome_trace(rec: &Recorder) -> Json {
    let mut events = vec![Json::obj([
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::u64(0)),
        ("tid", Json::u64(0)),
        ("args", Json::obj([("name", Json::str("orthotrees simulated clock (1τ = 1µs)"))])),
    ])];
    for span in rec.spans() {
        events.push(Json::obj([
            ("name", Json::str(span.name.clone())),
            ("cat", Json::str("phase")),
            ("ph", Json::str("X")),
            ("ts", Json::u64(span.start.get())),
            ("dur", Json::u64(span.duration().get())),
            ("pid", Json::u64(0)),
            ("tid", Json::u64(0)),
        ]));
    }
    let other = Json::obj(
        rec.counters()
            .map(|(name, v)| (name.to_string(), Json::u64(v)))
            .chain(rec.histograms().map(|(name, h)| (format!("{name}.mean"), Json::f64(h.mean()))))
            .collect::<Vec<_>>(),
    );
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
        ("otherData", other),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthotrees_vlsi::BitTime;

    fn sample() -> Recorder {
        let mut r = Recorder::new();
        r.open("SORT", BitTime::ZERO);
        r.open("ROOTTOLEAF", BitTime::ZERO);
        r.close(BitTime::new(40));
        r.close(BitTime::new(100));
        r.count("fault.retries", 3);
        r.observe("calendar", 7);
        r
    }

    #[test]
    fn trace_is_valid_json_with_complete_events() {
        let doc = chrome_trace(&sample());
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        let events = back.get("traceEvents").and_then(Json::as_arr).unwrap();
        // Metadata + two spans.
        assert_eq!(events.len(), 3);
        let span = &events[1];
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("name").and_then(Json::as_str), Some("SORT"));
        assert_eq!(span.get("dur").and_then(Json::as_u64), Some(100));
        for ev in events {
            for key in ["name", "ph", "pid", "tid"] {
                assert!(ev.get(key).is_some(), "event missing {key}");
            }
        }
    }

    #[test]
    fn counters_ride_in_other_data() {
        let doc = chrome_trace(&sample());
        let other = doc.get("otherData").unwrap();
        assert_eq!(other.get("fault.retries").and_then(Json::as_u64), Some(3));
        assert_eq!(other.get("calendar.mean").and_then(Json::as_f64), Some(7.0));
    }

    #[test]
    fn empty_recorder_still_renders_a_loadable_file() {
        let doc = chrome_trace(&Recorder::new());
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 1, "metadata only");
        assert!(Json::parse(&doc.render()).is_ok());
    }
}
