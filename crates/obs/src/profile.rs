//! Windowed time-series profiler: *when* the simulation is busy, not just
//! how much it did in aggregate.
//!
//! The [`Recorder`] folds a run into totals — counters, power-of-two
//! histograms, per-link sums — which answer "how much" but never "when".
//! The [`Profiler`] buckets the same activity into fixed-width windows of
//! the simulated clock, so a calendar-depth spike at the gather phase of a
//! sort, or a queue-wait burst under a dense fault plan, shows up at its
//! time coordinate. It is the measured baseline the event-core overhaul
//! (arena + ladder queue) must be diffed against.
//!
//! Two ways to fill one:
//!
//! * **Engine level** — `sim::Engine` accepts an `Option<Profiler>` under
//!   the same zero-overhead-when-absent contract as the `Recorder`: with
//!   no profiler installed the hot loop touches no profiling code, and an
//!   installed profiler never changes a simulated bit, time or output
//!   (bit-identity, enforced by proptests in the consuming crates). The
//!   engine feeds [`Profiler::event_fired`], [`Profiler::link_bit`],
//!   [`Profiler::compute_charge`] and [`Profiler::fault_at`].
//! * **Word level** — [`Profiler::from_recorder`] re-buckets a recorded
//!   run's causal segments (wire-delay / queue-wait / node-compute, plus
//!   the `FAULT-OVERHEAD` phase) into windows after the fact, so the
//!   `Otn`/`Otc` clock machines get time-resolved profiles with no new
//!   hooks.
//!
//! Two invariants hold by construction and are policed as `netlint` rules:
//! the window sequence is gapless and strictly monotone in index starting
//! at 0 (**PROF-002**), and the per-window sums tile the aggregate totals
//! a `Recorder` collects for the same run (**PROF-001**) — the windowed
//! analogue of the Σself = completion invariant.
//!
//! Window count is bounded: past [`MAX_WINDOWS`] the profiler doubles the
//! window width and merges adjacent pairs (min/max/sum merges are exact),
//! so memory stays O(1) in run length while every recorded quantity is
//! preserved. The effective width after a run is [`Profiler::width`].

use crate::causal::SegmentKind;
use crate::Recorder;
use orthotrees_vlsi::BitTime;
use std::collections::BTreeMap;

/// Window-count bound: one more window than this triggers a coalescing
/// pass (width doubles, adjacent windows merge pairwise).
pub const MAX_WINDOWS: usize = 128;

/// One fixed-width window of simulated time, `[index·width, (index+1)·width)`.
///
/// All quantities are sums (or min/max) over activity whose time
/// coordinate fell inside the window. `cal_min` is 0 when
/// `cal_samples == 0` (no event fired in this window), mirroring the
/// `Histogram::mean` empty contract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Window {
    /// Window index; consecutive from 0 with no gaps (PROF-002).
    pub index: u64,
    /// Events the engine delivered in this window.
    pub events: u64,
    /// Smallest calendar depth sampled at a delivery (0 if none).
    pub cal_min: u64,
    /// Largest calendar depth sampled at a delivery.
    pub cal_max: u64,
    /// Sum of sampled calendar depths (for the window mean).
    pub cal_sum: u128,
    /// Number of calendar-depth samples (= events, at engine level).
    pub cal_samples: u64,
    /// Bits that entered a wire in this window.
    pub link_bits: u64,
    /// Queue-wait τ: engine-level entrance waits, or word-level
    /// queue-wait segment time, that elapsed inside the window.
    pub queue_wait: u64,
    /// Wire-delay τ inside the window (word level only; the engine
    /// attributes whole bits to their entrance window instead).
    pub wire: u64,
    /// Compute τ inside the window (emission holds at engine level,
    /// node-compute segments at word level).
    pub compute: u64,
    /// Faults injected in this window (engine level).
    pub faults: u64,
    /// Fault-retry overhead τ inside the window (word level): time under
    /// the `FAULT-OVERHEAD` phase. A sub-attribution of the other
    /// segment buckets, not an addition to them.
    pub fault_overhead: u64,
}

impl Window {
    fn empty(index: u64) -> Window {
        Window { index, ..Window::default() }
    }

    /// Mean sampled calendar depth (0.0 when no samples — same contract
    /// as `Histogram::mean`).
    pub fn cal_mean(&self) -> f64 {
        if self.cal_samples == 0 {
            0.0
        } else {
            self.cal_sum as f64 / self.cal_samples as f64
        }
    }

    /// Folds `other` into `self` (coalescing merge; keeps `self.index`).
    fn absorb(&mut self, other: &Window) {
        self.events += other.events;
        if other.cal_samples > 0 {
            self.cal_min =
                if self.cal_samples == 0 { other.cal_min } else { self.cal_min.min(other.cal_min) };
            self.cal_max = self.cal_max.max(other.cal_max);
            self.cal_sum += other.cal_sum;
            self.cal_samples += other.cal_samples;
        }
        self.link_bits += other.link_bits;
        self.queue_wait += other.queue_wait;
        self.wire += other.wire;
        self.compute += other.compute;
        self.faults += other.faults;
        self.fault_overhead += other.fault_overhead;
    }
}

/// Engine-structure sizes captured at the calendar-depth peak: how big
/// the event core's data structures get at the worst moment — the
/// numbers an arena/ladder-queue replacement must be sized for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Simulated time of the peak-depth delivery.
    pub at: BitTime,
    /// Calendar entries at the peak (the popped event included).
    pub calendar_entries: u64,
    /// Links whose entrance slot was still occupied past the peak time.
    pub busy_links: u64,
    /// Events delivered up to and including the peak — the event log's
    /// length at that moment when the log is kept.
    pub delivered_events: u64,
}

/// Aggregate totals over all windows (what PROF-001 compares against the
/// `Recorder`'s independent bookkeeping).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileTotals {
    /// Σ window events.
    pub events: u64,
    /// Σ window link bits.
    pub link_bits: u64,
    /// Σ window queue-wait τ.
    pub queue_wait: u64,
    /// Σ window wire-delay τ.
    pub wire: u64,
    /// Σ window compute τ.
    pub compute: u64,
    /// Σ window injected faults.
    pub faults: u64,
    /// Σ window fault-retry overhead τ.
    pub fault_overhead: u64,
}

/// One hot-spot attribution row: a subject (`node 5`, `link 12`, or a
/// phase name at word level) and its load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotSpot {
    /// What is hot.
    pub name: String,
    /// How hot: delivered events for nodes, bits carried for links,
    /// total segment τ for phases.
    pub value: u64,
}

/// The windowed profiler. See the [module docs](self) for the two fill
/// paths and the PROF-001/002 invariants.
#[derive(Clone, Debug)]
pub struct Profiler {
    width: u64,
    windows: Vec<Window>,
    node_events: Vec<u64>,
    link_bits: Vec<u64>,
    phase_time: BTreeMap<String, u64>,
    peak_depth: u64,
    footprint: Option<Footprint>,
}

impl Profiler {
    /// An empty profiler with the given initial window width in τ
    /// (clamped to ≥ 1). The width doubles whenever a run outgrows
    /// [`MAX_WINDOWS`]; read the effective value back with
    /// [`width`](Profiler::width).
    pub fn new(width: u64) -> Profiler {
        Profiler {
            width: width.max(1),
            windows: Vec::new(),
            node_events: Vec::new(),
            link_bits: Vec::new(),
            phase_time: BTreeMap::new(),
            peak_depth: 0,
            footprint: None,
        }
    }

    /// Rebuilds a profiler from an already-windowed sequence (a parsed
    /// `orthotrees-profile/v1` row, or a hand-built fixture). The windows
    /// are taken verbatim — *no* gap filling or re-indexing — so tooling
    /// can round-trip documents and the verify rules can be demonstrated
    /// against deliberately malformed sequences. Hot-spot tables and the
    /// footprint are empty.
    pub fn from_windows(width: u64, windows: Vec<Window>) -> Profiler {
        let peak = windows.iter().map(|w| w.cal_max).max().unwrap_or(0);
        Profiler {
            width: width.max(1),
            windows,
            node_events: Vec::new(),
            link_bits: Vec::new(),
            phase_time: BTreeMap::new(),
            peak_depth: peak,
            footprint: None,
        }
    }

    /// Re-buckets a recorded run's causal segments into windows: the
    /// word-level fill path. Wire-delay / queue-wait / node-compute
    /// segment time is split exactly across window boundaries, so
    /// Σ(wire + queue_wait + compute) over windows equals
    /// [`Recorder::segments_total`] (PROF-001 at word level). Segment
    /// time recorded under the `FAULT-OVERHEAD` phase additionally lands
    /// in [`Window::fault_overhead`], and per-phase totals feed
    /// [`hot_phases`](Profiler::hot_phases).
    pub fn from_recorder(rec: &Recorder, width: u64) -> Profiler {
        let mut p = Profiler::new(width);
        for seg in rec.segments() {
            let phase = rec.segment_phase(seg).to_string();
            p.add_segment(&phase, seg.kind, seg.start, seg.end);
        }
        p
    }

    /// A window width that buckets a run of `total_tau` τ into at most
    /// ~[`MAX_WINDOWS`]/2 windows (minimum 1τ) — the default for
    /// [`from_recorder`](Profiler::from_recorder) callers that know the
    /// completion time up front.
    pub fn auto_width(total_tau: u64) -> u64 {
        (total_tau / (MAX_WINDOWS as u64 / 2)).max(1)
    }

    /// Effective window width in τ (≥ the constructor argument; doubles
    /// under coalescing).
    pub fn width(&self) -> u64 {
        self.width
    }

    /// The windows, indexed consecutively from 0 (PROF-002 holds by
    /// construction for engine- and recorder-filled profilers).
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Largest calendar depth seen at any delivery.
    pub fn peak_calendar_depth(&self) -> u64 {
        self.peak_depth
    }

    /// Engine-structure sizes at the calendar-depth peak (engine-filled
    /// profilers only).
    pub fn footprint(&self) -> Option<&Footprint> {
        self.footprint.as_ref()
    }

    /// Per-node delivered-event counts, indexed by node id.
    pub fn node_events(&self) -> &[u64] {
        &self.node_events
    }

    /// Per-link bits-entered counts, indexed by link id.
    pub fn link_traffic(&self) -> &[u64] {
        &self.link_bits
    }

    /// Sums every window into one [`ProfileTotals`] — the left-hand side
    /// of the PROF-001 tiling check.
    pub fn totals(&self) -> ProfileTotals {
        let mut t = ProfileTotals::default();
        for w in &self.windows {
            t.events += w.events;
            t.link_bits += w.link_bits;
            t.queue_wait += w.queue_wait;
            t.wire += w.wire;
            t.compute += w.compute;
            t.faults += w.faults;
            t.fault_overhead += w.fault_overhead;
        }
        t
    }

    // --------------------------------------------------------------
    // Engine hooks.
    // --------------------------------------------------------------

    /// Records one delivered event at `at` to node `node` with the
    /// calendar `depth` entries deep (the popped event included).
    /// Returns `true` when `depth` sets a new peak — the engine then
    /// captures the structure sizes with
    /// [`record_footprint`](Profiler::record_footprint).
    pub fn event_fired(&mut self, at: BitTime, node: usize, depth: u64) -> bool {
        if self.node_events.len() <= node {
            self.node_events.resize(node + 1, 0);
        }
        self.node_events[node] += 1;
        let w = self.slot(at);
        w.events += 1;
        w.cal_min = if w.cal_samples == 0 { depth } else { w.cal_min.min(depth) };
        w.cal_max = w.cal_max.max(depth);
        w.cal_sum += u128::from(depth);
        w.cal_samples += 1;
        if depth > self.peak_depth {
            self.peak_depth = depth;
            true
        } else {
            false
        }
    }

    /// Captures the engine-structure footprint at a new calendar-depth
    /// peak (called by the engine when
    /// [`event_fired`](Profiler::event_fired) returns `true`).
    pub fn record_footprint(&mut self, at: BitTime, depth: u64, busy_links: u64, delivered: u64) {
        self.footprint = Some(Footprint {
            at,
            calendar_entries: depth,
            busy_links,
            delivered_events: delivered,
        });
    }

    /// Records one bit entering link `link` at `enter`, having waited
    /// `waited` τ for the wire entrance.
    pub fn link_bit(&mut self, enter: BitTime, link: usize, waited: u64) {
        if self.link_bits.len() <= link {
            self.link_bits.resize(link + 1, 0);
        }
        self.link_bits[link] += 1;
        let w = self.slot(enter);
        w.link_bits += 1;
        w.queue_wait += waited;
    }

    /// Records `hold` τ of node compute (an emission hold) anchored at
    /// `at`.
    pub fn compute_charge(&mut self, at: BitTime, hold: u64) {
        self.slot(at).compute += hold;
    }

    /// Records one injected fault at `at`.
    pub fn fault_at(&mut self, at: BitTime) {
        self.slot(at).faults += 1;
    }

    // --------------------------------------------------------------
    // Hot-spot attribution.
    // --------------------------------------------------------------

    /// The `k` nodes that received the most events, as
    /// `node <id>` rows, descending (id as tie-break).
    pub fn hot_nodes(&self, k: usize) -> Vec<HotSpot> {
        top_k(self.node_events.iter().enumerate().map(|(i, &v)| (format!("node {i}"), v)), k)
    }

    /// The `k` links that carried the most bits, as `link <id>` rows,
    /// descending (id as tie-break).
    pub fn hot_links(&self, k: usize) -> Vec<HotSpot> {
        top_k(self.link_bits.iter().enumerate().map(|(i, &v)| (format!("link {i}"), v)), k)
    }

    /// The `k` phases with the most causal-segment time (word-level
    /// profiles built with [`from_recorder`](Profiler::from_recorder)),
    /// descending (name as tie-break).
    pub fn hot_phases(&self, k: usize) -> Vec<HotSpot> {
        top_k(self.phase_time.iter().map(|(n, &v)| (n.clone(), v)), k)
    }

    /// The `k` hottest subjects across all attribution tables — nodes
    /// and links for engine-filled profilers, phases for word-level
    /// ones — descending by load (name as tie-break).
    pub fn hot_spots(&self, k: usize) -> Vec<HotSpot> {
        top_k(
            self.node_events
                .iter()
                .enumerate()
                .map(|(i, &v)| (format!("node {i}"), v))
                .chain(self.link_bits.iter().enumerate().map(|(i, &v)| (format!("link {i}"), v)))
                .chain(self.phase_time.iter().map(|(n, &v)| (n.clone(), v))),
            k,
        )
    }

    // --------------------------------------------------------------
    // Internals.
    // --------------------------------------------------------------

    /// The window containing `at`, coalescing first if `at` would land
    /// past [`MAX_WINDOWS`] and filling any gap with empty windows —
    /// which is how PROF-002 (gapless, monotone) holds by construction.
    fn slot(&mut self, at: BitTime) -> &mut Window {
        while at.get() / self.width >= MAX_WINDOWS as u64 {
            self.coalesce();
        }
        let idx = (at.get() / self.width) as usize;
        while self.windows.len() <= idx {
            let next = self.windows.len() as u64;
            self.windows.push(Window::empty(next));
        }
        &mut self.windows[idx]
    }

    /// Doubles the window width and merges adjacent window pairs.
    fn coalesce(&mut self) {
        self.width *= 2;
        let old = std::mem::take(&mut self.windows);
        for w in &old {
            let idx = (w.index / 2) as usize;
            while self.windows.len() <= idx {
                let next = self.windows.len() as u64;
                self.windows.push(Window::empty(next));
            }
            self.windows[idx].absorb(w);
        }
    }

    /// Splits one causal segment's `[start, end)` τ across the windows
    /// it overlaps.
    fn add_segment(&mut self, phase: &str, kind: SegmentKind, start: BitTime, end: BitTime) {
        let end = end.get();
        let mut t = start.get();
        if end > t {
            *self.phase_time.entry(phase.to_string()).or_insert(0) += end - t;
        }
        while t < end {
            // `slot` may coalesce and change `self.width`, so the window
            // boundary is recomputed each iteration.
            let _ = self.slot(BitTime::new(t));
            let boundary = (t / self.width + 1) * self.width;
            let take = boundary.min(end) - t;
            let w = &mut self.windows[(t / self.width) as usize];
            match kind {
                SegmentKind::WireDelay => w.wire += take,
                SegmentKind::QueueWait => w.queue_wait += take,
                SegmentKind::NodeCompute => w.compute += take,
            }
            if phase == "FAULT-OVERHEAD" {
                w.fault_overhead += take;
            }
            t += take;
        }
    }
}

/// Top-`k` rows by descending value, name as tie-break; zero-valued rows
/// are dropped.
fn top_k(rows: impl Iterator<Item = (String, u64)>, k: usize) -> Vec<HotSpot> {
    let mut all: Vec<HotSpot> =
        rows.filter(|&(_, v)| v > 0).map(|(name, value)| HotSpot { name, value }).collect();
    all.sort_by(|a, b| b.value.cmp(&a.value).then_with(|| a.name.cmp(&b.name)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::SegmentKind;

    #[test]
    fn windows_are_gapless_even_with_sparse_activity() {
        let mut p = Profiler::new(10);
        assert!(p.event_fired(BitTime::new(5), 0, 3));
        assert!(!p.event_fired(BitTime::new(95), 1, 2));
        let w = p.windows();
        assert_eq!(w.len(), 10);
        for (i, win) in w.iter().enumerate() {
            assert_eq!(win.index, i as u64, "consecutive indices");
        }
        assert_eq!(w[0].events, 1);
        assert_eq!(w[9].events, 1);
        assert!(w[1..9].iter().all(|w| w.events == 0));
    }

    #[test]
    fn calendar_stats_track_min_max_mean_per_window() {
        let mut p = Profiler::new(100);
        p.event_fired(BitTime::new(1), 0, 4);
        p.event_fired(BitTime::new(2), 0, 8);
        p.event_fired(BitTime::new(3), 0, 6);
        let w = p.windows()[0];
        assert_eq!((w.cal_min, w.cal_max, w.cal_samples), (4, 8, 3));
        assert!((w.cal_mean() - 6.0).abs() < 1e-9);
        assert_eq!(p.peak_calendar_depth(), 8);
    }

    #[test]
    fn empty_window_reports_zero_min_and_mean() {
        let w = Window::empty(3);
        assert_eq!(w.cal_min, 0);
        assert_eq!(w.cal_mean(), 0.0);
    }

    #[test]
    fn peak_detection_fires_once_per_new_peak() {
        let mut p = Profiler::new(10);
        assert!(p.event_fired(BitTime::ZERO, 0, 5), "first event is a peak");
        assert!(!p.event_fired(BitTime::new(1), 0, 5), "ties are not peaks");
        assert!(!p.event_fired(BitTime::new(2), 0, 3));
        assert!(p.event_fired(BitTime::new(3), 0, 9));
        p.record_footprint(BitTime::new(3), 9, 4, 17);
        let f = p.footprint().unwrap();
        assert_eq!((f.calendar_entries, f.busy_links, f.delivered_events), (9, 4, 17));
    }

    #[test]
    fn coalescing_doubles_width_and_preserves_sums() {
        let mut p = Profiler::new(1);
        for t in 0..1000u64 {
            p.event_fired(BitTime::new(t), (t % 7) as usize, 1 + t % 5);
            p.link_bit(BitTime::new(t), (t % 3) as usize, t % 2);
        }
        assert!(p.windows().len() <= MAX_WINDOWS);
        assert!(p.width() >= 1000 / MAX_WINDOWS as u64, "width grew: {}", p.width());
        let t = p.totals();
        assert_eq!(t.events, 1000);
        assert_eq!(t.link_bits, 1000);
        assert_eq!(t.queue_wait, 500);
        let cal: u64 = p.windows().iter().map(|w| w.cal_samples).sum();
        assert_eq!(cal, 1000, "calendar samples survive merging");
        for (i, w) in p.windows().iter().enumerate() {
            assert_eq!(w.index, i as u64, "re-indexed consecutively");
        }
    }

    #[test]
    fn segments_split_exactly_across_window_boundaries() {
        let mut rec = Recorder::new();
        rec.open("ROOTTOLEAF", BitTime::ZERO);
        rec.segment(SegmentKind::WireDelay, None, BitTime::ZERO, BitTime::new(15));
        rec.segment(SegmentKind::QueueWait, None, BitTime::new(15), BitTime::new(21));
        rec.close(BitTime::new(21));
        rec.open("FAULT-OVERHEAD", BitTime::new(21));
        rec.segment(SegmentKind::QueueWait, None, BitTime::new(21), BitTime::new(25));
        rec.close(BitTime::new(25));
        let p = Profiler::from_recorder(&rec, 10);
        let t = p.totals();
        assert_eq!(t.wire + t.queue_wait + t.compute, rec.segments_total().get(), "tiling");
        assert_eq!(t.fault_overhead, 4, "FAULT-OVERHEAD sub-attribution");
        // The 15τ wire segment splits 10 + 5 across windows 0 and 1.
        assert_eq!(p.windows()[0].wire, 10);
        assert_eq!(p.windows()[1].wire, 5);
        // Window 2 gets the [20,21) tail of the first queue segment plus
        // the whole 4τ fault-overhead one.
        assert_eq!(p.windows()[2].queue_wait, 5);
        let phases = p.hot_phases(2);
        assert_eq!(phases[0].name, "ROOTTOLEAF");
        assert_eq!(phases[0].value, 21);
    }

    #[test]
    fn hot_spots_rank_nodes_links_and_phases() {
        let mut p = Profiler::new(10);
        for _ in 0..5 {
            p.event_fired(BitTime::ZERO, 2, 1);
        }
        p.event_fired(BitTime::ZERO, 0, 1);
        p.link_bit(BitTime::ZERO, 1, 0);
        p.link_bit(BitTime::ZERO, 1, 0);
        let hot = p.hot_spots(2);
        assert_eq!(hot[0].name, "node 2");
        assert_eq!(hot[0].value, 5);
        assert_eq!(hot[1].name, "link 1");
        assert_eq!(p.hot_nodes(10).len(), 2, "zero-valued rows dropped");
    }

    #[test]
    fn from_windows_is_verbatim() {
        let w = vec![Window::empty(0), Window::empty(3)]; // deliberate gap
        let p = Profiler::from_windows(5, w);
        assert_eq!(p.windows().len(), 2);
        assert_eq!(p.windows()[1].index, 3, "no re-indexing: violations stay visible");
    }

    #[test]
    fn compute_and_fault_charges_land_in_their_windows() {
        let mut p = Profiler::new(10);
        p.compute_charge(BitTime::new(12), 3);
        p.fault_at(BitTime::new(25));
        assert_eq!(p.windows()[1].compute, 3);
        assert_eq!(p.windows()[2].faults, 1);
        let t = p.totals();
        assert_eq!((t.compute, t.faults), (3, 1));
    }
}
