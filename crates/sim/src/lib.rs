//! Bit-level discrete-event simulation kernel.
//!
//! The analytic cost algebra in [`orthotrees_vlsi`] prices every
//! communication primitive from the layout's wire lengths. This crate
//! provides an independent check: a small discrete-event engine in which
//! *individual bits* travel over wires with model-priced delays and pipeline
//! behind each other exactly as Thompson's model prescribes ("the amplifier
//! stages are individually clocked and pipelining can be used to transmit
//! one bit every O(1) units of time", paper §I.A).
//!
//! The [`experiments`] module builds bit-level models of the OTN's tree
//! primitives (broadcast, send, bit-serial SUM and MIN) and measures their
//! completion times; the workspace's tests assert these agree *exactly* with
//! the closed-form costs of
//! [`CostModel`](orthotrees_vlsi::CostModel) for every delay model.
//!
//! # Example
//!
//! ```
//! use orthotrees_sim::experiments::broadcast_completion_time;
//! use orthotrees_vlsi::CostModel;
//!
//! let m = CostModel::thompson(16);
//! let simulated = broadcast_completion_time(16, &m)?;
//! let analytic = m.tree_root_to_leaf(16, m.leaf_pitch());
//! assert_eq!(simulated, analytic);
//! # Ok::<(), orthotrees_vlsi::SimError>(())
//! ```

mod calendar;
mod engine;
pub mod experiments;
pub mod fault;
mod link;
mod node;
pub mod recovery;
pub mod snapshot;

pub use calendar::CalendarKind;
pub use engine::{Engine, EventLog, RunStatus};
pub use fault::{
    DeadIp, FaultPlan, FaultStats, LinkFaultKind, Outage, RunBudget, TreeAxis, WordFaultKind,
};
pub use link::{Link, LinkId};
pub use node::{Bit, NodeBehavior, NodeId, Outbox, PortId};
pub use orthotrees_obs::flight::{FlightEvent, FlightRecorder};
pub use orthotrees_obs::profile::Profiler;
pub use orthotrees_obs::telemetry::Telemetry;
pub use orthotrees_obs::Recorder;
pub use recovery::{supervise_engine, supervise_steps, RecoveryPolicy, RecoveryReport};
pub use snapshot::Snapshot;
