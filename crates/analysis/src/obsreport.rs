//! Observability reports: phase time-attribution and link-utilization
//! tables rendered from a [`Recorder`], plus the instrumented runs that
//! feed them.
//!
//! Two levels of the stack are profiled:
//!
//! * **word level** — [`otn_sort_observed`] / [`otc_sort_observed`] run
//!   the paper's sorting procedures with a recorder installed, so every
//!   primitive's clock charge lands in a named phase span
//!   (`ROOTTOLEAF`, `LEAFTOROOT`, `VECTORCIRCULATE`, …). The
//!   [`phase_table`] rendered from it is *complete*: self times sum
//!   exactly to the completion time (checked by a test here and enforced
//!   crate-side by `crates/core/tests/observability.rs`);
//! * **bit level** — [`broadcast_link_profile`] runs the discrete-event
//!   `ROOTTOLEAF` model with the engine recorder on, yielding per-link
//!   bits-carried/utilization/queueing and the calendar-depth histogram
//!   that [`link_table`] renders.

use crate::workloads;
use orthotrees::obs::Recorder;
use orthotrees::otc::{self, Otc};
use orthotrees::otn::{sort, Otn};
use orthotrees::BitTime;
use orthotrees_sim::experiments;
use orthotrees_vlsi::{CostModel, SimError};
use std::fmt::Write as _;

/// Runs `SORT-OTN` on `n` seeded words with a recorder installed;
/// returns the outcome and the recorder.
///
/// # Panics
///
/// Panics if `n` is not a power of two (the sorting network's
/// constructor requirement).
pub fn otn_sort_observed(n: usize, seed: u64) -> (sort::SortOutcome, Recorder) {
    let xs = workloads::distinct_words(n, seed);
    let mut net = Otn::for_sorting(n).expect("power-of-two sort size");
    net.install_recorder(Recorder::new());
    let out = sort::sort(&mut net, &xs).expect("matched input length");
    let rec = net.take_recorder().expect("recorder was installed");
    (out, rec)
}

/// Runs `SORT-OTC` on `n` seeded words with a recorder installed;
/// returns the outcome and the recorder.
///
/// # Panics
///
/// Panics if `n` is not a power of two or below the OTC minimum (4).
pub fn otc_sort_observed(n: usize, seed: u64) -> (sort::SortOutcome, Recorder) {
    let xs = workloads::distinct_words(n, seed);
    let mut net = Otc::for_sorting(n).expect("power-of-two sort size");
    net.install_recorder(Recorder::new());
    let out = otc::sort::sort(&mut net, &xs).expect("matched input length");
    let rec = net.take_recorder().expect("recorder was installed");
    (out, rec)
}

/// Runs the bit-level `ROOTTOLEAF` model over `leaves` leaves with the
/// engine recorder on; returns the completion time and the recorder
/// (per-link traffic, node activations, calendar depths).
///
/// # Errors
///
/// Returns [`SimError`] if the bit-level run fails to complete.
pub fn broadcast_link_profile(
    leaves: usize,
    m: &CostModel,
) -> Result<(BitTime, Recorder), SimError> {
    experiments::broadcast_observed(leaves, m)
}

/// The registry classification of a span name for the phase table:
/// `class` plus the direction for communication entries (`comm/stream`),
/// or `-` for spans that are not registry primitives.
fn registry_kind(name: &str) -> &'static str {
    use orthotrees::primitive::{Class, Direction};
    match orthotrees::primitive::lookup(name) {
        None => "-",
        Some(s) => match (s.class, s.direction) {
            (Class::Communication, Some(Direction::Broadcast)) => "comm/broadcast",
            (Class::Communication, Some(Direction::Send)) => "comm/send",
            (Class::Communication, Some(Direction::Aggregate)) => "comm/aggregate",
            (Class::Communication, Some(Direction::Stream)) => "comm/stream",
            (Class::Communication, Some(Direction::Circulate)) => "comm/circulate",
            (Class::Communication, None) => "comm",
            (Class::Composite, _) => "composite",
            (Class::Compute, _) => "compute",
            (Class::Procedure, _) => "procedure",
            (Class::Overhead, _) => "overhead",
        },
    }
}

/// Renders the per-phase time-attribution table, each row annotated with
/// the span's registry classification. The `self` column sums exactly to
/// `completion` (every clock advance happens inside a span), and the
/// footer states the check.
pub fn phase_table(rec: &Recorder, completion: BitTime) -> String {
    let totals = rec.phase_totals();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:<14} {:>6} {:>12} {:>12} {:>7}",
        "phase", "kind", "count", "total", "self", "self%"
    );
    let mut attributed = 0u64;
    for p in &totals {
        attributed += p.self_time.get();
        let pct = if completion.get() == 0 {
            0.0
        } else {
            100.0 * p.self_time.get() as f64 / completion.get() as f64
        };
        let _ = writeln!(
            out,
            "{:<20} {:<14} {:>6} {:>12} {:>12} {:>6.1}%",
            p.name,
            registry_kind(&p.name),
            p.count,
            p.total.get(),
            p.self_time.get(),
            pct
        );
    }
    let check = if attributed == completion.get() { "complete" } else { "INCOMPLETE" };
    let _ = writeln!(
        out,
        "{:<20} {:<14} {:>6} {:>12} {:>12} ({check}: Σself = completion {})",
        "TOTAL",
        "",
        "",
        "",
        attributed,
        completion.get()
    );
    out
}

/// Renders the per-link utilization table — the 10 busiest links (by
/// queueing, then bits) plus a fleet summary line with the calendar-depth
/// histogram stats from a bit-level run's recorder.
pub fn link_table(rec: &Recorder) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:>8} {:>8} {:>10} {:>6}",
        "link", "bits", "queued", "wait(tau)", "util"
    );
    let mut active: Vec<(usize, &orthotrees::obs::LinkStats)> =
        rec.links().iter().enumerate().filter(|(_, l)| l.bits > 0).collect();
    let total_bits: u64 = active.iter().map(|(_, l)| l.bits).sum();
    let count = active.len();
    active.sort_by(|(ai, a), (bi, b)| {
        (b.wait_total, b.bits).cmp(&(a.wait_total, a.bits)).then(ai.cmp(bi))
    });
    for (i, l) in active.iter().take(10) {
        let _ = writeln!(
            out,
            "{:<6} {:>8} {:>8} {:>10} {:>6.2}",
            i,
            l.bits,
            l.queued_bits,
            l.wait_total,
            l.utilization()
        );
    }
    if count > 10 {
        let _ = writeln!(out, "… {} more active links elided", count - 10);
    }
    let cal = rec.calendar_depth();
    let _ = writeln!(
        out,
        "{count} active links, {total_bits} bits carried; calendar depth mean {:.1}, \
         p50 {}, p99 {}, max {}",
        cal.mean(),
        cal.percentile(50.0),
        cal.percentile(99.0),
        cal.max()
    );
    out
}

/// The full observability section of the report: OTN and OTC sorting
/// phase breakdowns at size `sort_n`, and the bit-level link profile of a
/// `ROOTTOLEAF` broadcast over `sort_n` leaves.
pub fn observability_report(sort_n: usize, seed: u64) -> String {
    let mut out = String::new();
    let (otn_out, otn_rec) = otn_sort_observed(sort_n, seed);
    let _ = writeln!(
        out,
        "Phase attribution — SORT-OTN, N = {sort_n} (completion {} bit-times):",
        otn_out.time.get()
    );
    out.push_str(&phase_table(&otn_rec, otn_out.time));
    out.push('\n');

    let (otc_out, otc_rec) = otc_sort_observed(sort_n, seed);
    let _ = writeln!(
        out,
        "Phase attribution — SORT-OTC, N = {sort_n} (completion {} bit-times):",
        otc_out.time.get()
    );
    out.push_str(&phase_table(&otc_rec, otc_out.time));
    out.push('\n');

    let m = CostModel::thompson(sort_n);
    match broadcast_link_profile(sort_n, &m) {
        Ok((t, rec)) => {
            let _ = writeln!(
                out,
                "Link utilization — bit-level ROOTTOLEAF over {sort_n} leaves \
                 (completion {} bit-times):",
                t.get()
            );
            out.push_str(&link_table(&rec));
        }
        Err(e) => {
            let _ = writeln!(out, "Link utilization: bit-level run failed: {e}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_table_totals_sum_to_completion() {
        let (out, rec) = otn_sort_observed(16, 7);
        let text = phase_table(&rec, out.time);
        assert!(text.contains("complete"), "{text}");
        assert!(!text.contains("INCOMPLETE"), "{text}");
        assert!(text.contains("SORT-OTN"));
        assert!(text.contains("ROOTTOLEAF"));
    }

    #[test]
    fn phase_table_annotates_rows_with_registry_kinds() {
        let (out, rec) = otn_sort_observed(16, 7);
        let text = phase_table(&rec, out.time);
        assert!(text.contains("comm/broadcast"), "{text}");
        assert!(text.contains("procedure"), "{text}");
        let (out, rec) = otc_sort_observed(16, 7);
        let text = phase_table(&rec, out.time);
        assert!(text.contains("comm/stream"), "{text}");
        assert!(text.contains("comm/circulate"), "{text}");
    }

    #[test]
    fn otc_phase_table_totals_sum_to_completion() {
        let (out, rec) = otc_sort_observed(16, 7);
        let text = phase_table(&rec, out.time);
        assert!(text.contains("complete"), "{text}");
        assert!(!text.contains("INCOMPLETE"), "{text}");
        assert!(text.contains("VECTORCIRCULATE"));
    }

    #[test]
    fn link_table_reports_full_pipelining() {
        let m = CostModel::thompson(16);
        let (_, rec) = broadcast_link_profile(16, &m).unwrap();
        let text = link_table(&rec);
        assert!(text.contains("active links"), "{text}");
        // The broadcast pipelines one bit per tau on every active wire.
        assert!(text.contains("1.00"), "{text}");
    }

    #[test]
    fn link_table_reports_calendar_percentiles() {
        let m = CostModel::thompson(16);
        let (_, rec) = broadcast_link_profile(16, &m).unwrap();
        let text = link_table(&rec);
        assert!(text.contains("p50"), "{text}");
        assert!(text.contains("p99"), "{text}");
        let cal = rec.calendar_depth();
        assert!(cal.percentile(50.0) <= cal.percentile(99.0));
        assert!(cal.percentile(99.0) <= cal.max() || cal.count() == 0);
    }

    #[test]
    fn observability_report_has_all_three_sections() {
        let text = observability_report(16, 42);
        assert!(text.contains("SORT-OTN"));
        assert!(text.contains("SORT-OTC"));
        assert!(text.contains("Link utilization"));
        assert!(!text.contains("INCOMPLETE"), "{text}");
    }
}
