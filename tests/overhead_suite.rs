//! Fault-overhead base regression: each faultable primitive's retry
//! round must be priced from *its own* registry cost kind — the exact
//! bug class of the old `Otn::leaf_to_root`, whose overhead base cited
//! the broadcast closed form where the send form was intended. Under a
//! plan whose every transit faults detectably with `k` retries, the
//! elapsed time of one primitive is exactly `(1 + k) ×` its registry
//! cost: the charge itself plus `k` retransmissions of the same base.

use orthotrees::otc::Otc;
use orthotrees::otn::{self, Axis, Otn};
use orthotrees::primitive;
use orthotrees::{BitTime, FaultPlan, Word};
use orthotrees_vlsi::{CostKind, CostModel};

/// Every transit faults, every fault is parity-detectable, `k` retries:
/// each transit deterministically spends exactly `k` extra attempts
/// (and delivers an erasure, which these tests ignore — only the clock
/// is under test).
fn deterministic_plan(k: u32) -> FaultPlan {
    FaultPlan::new(17).with_word_fault_rate(1.0).with_undetectable_fraction(0.0).with_max_retries(k)
}

/// Runs one named OTN primitive under `deterministic_plan(k)` and
/// returns its elapsed time and its registry-priced base cost.
fn otn_elapsed(name: &str, k: u32) -> (BitTime, BitTime) {
    let n = 16;
    let mut net = Otn::for_sorting(n).unwrap();
    net.install_fault_plan(deterministic_plan(k));
    let a = net.alloc_reg("A");
    let b = net.alloc_reg("B");
    net.load_reg(a, |i, j| Some((1 + i * n + j) as Word));
    net.load_row_roots(&vec![7; n]);
    let kind = primitive::spec_for(name).cost.expect("a communication primitive declares a cost");
    let base = net.model().primitive_cost(kind, net.leaves(Axis::Rows), net.pitch(), 1);
    let ((), t) = net.elapsed(|net| match name {
        "ROOTTOLEAF" => net.root_to_leaf(Axis::Rows, b, otn::all),
        "LEAFTOROOT" => net.leaf_to_root(Axis::Rows, a, |_, j, _| j == 0),
        "COUNT-LEAFTOROOT" => net.count_to_root(Axis::Rows, a),
        "SUM-LEAFTOROOT" => net.sum_to_root(Axis::Rows, a, otn::all),
        "MIN-LEAFTOROOT" => net.min_to_root(Axis::Rows, a, otn::all),
        "MAX-LEAFTOROOT" => net.max_to_root(Axis::Rows, a, otn::all),
        other => panic!("no OTN driver for {other}"),
    });
    (t, base)
}

/// Runs one named OTC stream primitive under `deterministic_plan(k)`.
fn otc_elapsed(name: &str, k: u32) -> (BitTime, BitTime) {
    let mut net = Otc::for_sorting(16).unwrap();
    net.install_fault_plan(deterministic_plan(k));
    let a = net.alloc_reg("A");
    let b = net.alloc_reg("B");
    net.load_reg(a, |i, j, q| Some((1 + i + 4 * j + 16 * q) as Word));
    net.load_row_root_buffers(&vec![vec![3; net.cycle_len()]; net.side()]);
    let kind = primitive::spec_for(name).cost.expect("a stream primitive declares a cost");
    let base = net.model().primitive_cost(kind, net.side(), net.pitch(), net.cycle_len());
    let ((), t) = net.elapsed(|net| match name {
        "ROOTTOCYCLE" => net.root_to_cycle(Axis::Rows, b, |_, _, _| true),
        "CYCLETOROOT" => net.cycle_to_root(Axis::Rows, a, |_, j, _, _| j == 0),
        "SUM-CYCLETOROOT" => net.sum_cycle_to_root(Axis::Rows, a, |_, _, _, _| true),
        "MIN-CYCLETOROOT" => net.min_cycle_to_root(Axis::Rows, a, |_, _, _, _| true),
        other => panic!("no OTC driver for {other}"),
    });
    (t, base)
}

#[test]
fn each_otn_primitive_overhead_scales_its_own_base() {
    for k in [1u32, 3] {
        for name in [
            "ROOTTOLEAF",
            "LEAFTOROOT",
            "COUNT-LEAFTOROOT",
            "SUM-LEAFTOROOT",
            "MIN-LEAFTOROOT",
            "MAX-LEAFTOROOT",
        ] {
            let (t, base) = otn_elapsed(name, k);
            assert_eq!(
                t,
                base * u64::from(1 + k),
                "{name} with {k} forced retries must cost (1 + {k}) × its registry base"
            );
        }
    }
}

#[test]
fn each_otc_primitive_overhead_scales_its_own_base() {
    for k in [1u32, 3] {
        for name in ["ROOTTOCYCLE", "CYCLETOROOT", "SUM-CYCLETOROOT", "MIN-CYCLETOROOT"] {
            let (t, base) = otc_elapsed(name, k);
            assert_eq!(
                t,
                base * u64::from(1 + k),
                "{name} with {k} forced retries must cost (1 + {k}) × its registry base"
            );
        }
    }
}

#[test]
fn a_clean_run_charges_exactly_the_registry_base() {
    for name in ["ROOTTOLEAF", "LEAFTOROOT", "SUM-LEAFTOROOT"] {
        let (t, base) = otn_elapsed(name, 0);
        // k = 0: the only faulting round is the final (erased) attempt,
        // so no retry time is charged — the primitive costs its base.
        assert_eq!(t, base, "{name} without retries must cost exactly its base");
    }
}

/// `LEAFTOROOT`'s overhead base is now `tree_leaf_to_root` — the *send*
/// form — instead of the broadcast form it used to cite. The fix is
/// intentionally value-preserving: relays insert no per-level gate delay
/// (§II.B), so the two closed forms coincide and every pre-fix golden
/// clock total stays bit-identical. This test pins the coincidence so a
/// future asymmetric delay convention re-derives both sides together.
#[test]
fn send_form_fix_is_value_preserving() {
    for leaves in [4usize, 16, 64, 256] {
        let m = CostModel::thompson(leaves);
        let pitch = m.leaf_pitch();
        assert_eq!(m.tree_leaf_to_root(leaves, pitch), m.tree_root_to_leaf(leaves, pitch));
    }
}

/// The registry pricing table itself: one closed form per cost kind, the
/// stream kinds appending `cycle_len − 1` pipelined cycle hops.
#[test]
fn each_cost_kind_is_pinned_to_its_closed_form() {
    let m = CostModel::thompson(16);
    let pitch = m.leaf_pitch();
    assert_eq!(m.primitive_cost(CostKind::Broadcast, 16, pitch, 1), m.tree_root_to_leaf(16, pitch));
    assert_eq!(m.primitive_cost(CostKind::Send, 16, pitch, 1), m.tree_leaf_to_root(16, pitch));
    assert_eq!(m.primitive_cost(CostKind::Aggregate, 16, pitch, 1), m.tree_aggregate(16, pitch));
    for cycle in [1usize, 2, 4, 8] {
        let tail = m.cycle_step() * (cycle as u64 - 1);
        assert_eq!(
            m.primitive_cost(CostKind::StreamBroadcast, 16, pitch, cycle),
            m.tree_root_to_leaf(16, pitch) + tail
        );
        assert_eq!(
            m.primitive_cost(CostKind::StreamSend, 16, pitch, cycle),
            m.tree_leaf_to_root(16, pitch) + tail
        );
        assert_eq!(
            m.primitive_cost(CostKind::StreamAggregate, 16, pitch, cycle),
            m.tree_aggregate(16, pitch) + tail
        );
        assert_eq!(m.primitive_cost(CostKind::CycleStep, 16, pitch, cycle), m.cycle_step());
    }
}
